package faurelog

import (
	"strings"
	"testing"

	"faure/internal/cond"
	"faure/internal/ctable"
	"faure/internal/prov"
)

// TestParallelProvenanceDeterminism: the canonical provenance dump —
// every live edge's tuple, rule, stratum/round and parents, worker
// attribution excluded — must be byte-identical at any worker count,
// because edges are recorded only in the serial commit path the merge
// replays in sequential emission order.
func TestParallelProvenanceDeterminism(t *testing.T) {
	for progName, src := range parallelPrograms {
		prog := MustParse(src)
		db := condGraph(t, 18)
		recSeq := prov.NewRecorder(0)
		seq, err := Eval(prog, db, Options{Workers: 1, Prov: recSeq})
		if err != nil {
			t.Fatalf("%s seq: %v", progName, err)
		}
		want := prov.NewExplainer(recSeq, seq.DB).Dump()
		if want == "" {
			t.Fatalf("%s: no provenance recorded", progName)
		}
		if seq.Stats.ProvEdges == 0 || seq.Stats.ProvEdges != recSeq.Stats().Recorded {
			t.Fatalf("%s: stats ProvEdges=%d, recorder %d", progName, seq.Stats.ProvEdges, recSeq.Stats().Recorded)
		}
		for _, workers := range []int{2, 8} {
			recPar := prov.NewRecorder(0)
			par, err := Eval(prog, db, Options{Workers: workers, Prov: recPar})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", progName, workers, err)
			}
			got := prov.NewExplainer(recPar, par.DB).Dump()
			if got != want {
				t.Fatalf("%s workers=%d: provenance diverges from sequential\nseq:\n%s\npar:\n%s",
					progName, workers, want, got)
			}
			if par.Stats.ProvEdges != seq.Stats.ProvEdges || par.Stats.ProvParents != seq.Stats.ProvParents {
				t.Errorf("%s workers=%d: prov stats (%d,%d) != seq (%d,%d)", progName, workers,
					par.Stats.ProvEdges, par.Stats.ProvParents, seq.Stats.ProvEdges, seq.Stats.ProvParents)
			}
		}
	}
}

// TestProvenanceExplainTree walks a recursive derivation back to its
// EDB leaves and checks negated parents render as negation leaves.
func TestProvenanceExplainTree(t *testing.T) {
	db := condGraph(t, 12)
	prog := MustParse(parallelPrograms["negation"])
	rec := prov.NewRecorder(0)
	res, err := Eval(prog, db, Options{Prov: rec})
	if err != nil {
		t.Fatal(err)
	}
	x := prov.NewExplainer(rec, res.DB)

	trees := x.ExplainAll("reach")
	if len(trees) == 0 {
		t.Fatal("no reach tuples to explain")
	}
	var deep *prov.Tree
	for _, tr := range trees {
		if tr.Rule != "" && len(tr.Children) == 2 {
			deep = tr
			break
		}
	}
	if deep == nil {
		t.Fatal("no recursive reach derivation found")
	}
	// Every path of the tree must terminate in an EDB leaf (link/node
	// facts) or a negation leaf; no node may be unresolved.
	var walk func(*prov.Tree)
	var leaves int
	walk = func(tr *prov.Tree) {
		if tr.Missing {
			t.Fatalf("unresolved parent in tree:\n%s", deep)
		}
		if len(tr.Children) == 0 {
			if !tr.EDB && !tr.Negated && tr.Rule != "" {
				t.Fatalf("interior node with no children: %+v", tr)
			}
			leaves++
			return
		}
		for _, c := range tr.Children {
			walk(c)
		}
	}
	walk(deep)
	if leaves < 2 {
		t.Fatalf("expected >= 2 leaves, got %d:\n%s", leaves, deep)
	}

	// isolated(a,b) :- node(a), node(b), not reach(a,b): its trees must
	// carry a negated leaf for the reach pattern.
	iso := x.ExplainAll("isolated")
	if len(iso) > 0 {
		found := false
		for _, c := range iso[0].Children {
			if c.Negated && c.Pred == "reach" {
				found = true
			}
		}
		if !found {
			t.Fatalf("isolated tree lacks negated reach leaf:\n%s", iso[0])
		}
		if !strings.Contains(iso[0].String(), "not reach") {
			t.Fatalf("rendering lacks 'not reach':\n%s", iso[0])
		}
	}
}

// TestProvenanceFlightRecorder: a bounded recorder keeps only the most
// recent edges and counts what the ring overwrote.
func TestProvenanceFlightRecorder(t *testing.T) {
	db := condGraph(t, 18)
	prog := MustParse(parallelPrograms["recursive"])
	rec := prov.NewRecorder(16)
	res, err := Eval(prog, db, Options{Prov: rec})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 16 {
		t.Fatalf("ring holds %d edges, want 16", rec.Len())
	}
	if res.Stats.ProvEvicted == 0 || res.Stats.ProvEvicted != res.Stats.ProvEdges-16 {
		t.Fatalf("evicted=%d edges=%d", res.Stats.ProvEvicted, res.Stats.ProvEdges)
	}
	// Tuples whose edge was evicted degrade to EDB leaves — explain
	// still answers, just with less depth.
	x := prov.NewExplainer(rec, res.DB)
	for _, tr := range x.ExplainAll("reach") {
		if tr.Missing {
			t.Fatalf("flight-recorder explain produced unresolved root: %+v", tr)
		}
	}
}

// TestProvenanceDisabledZero: without a recorder the engine must not
// count (or pay for) provenance.
func TestProvenanceDisabledZero(t *testing.T) {
	db := condGraph(t, 12)
	res, err := Eval(MustParse(parallelPrograms["recursive"]), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ProvEdges != 0 || res.Stats.ProvParents != 0 || res.Stats.ProvEvicted != 0 {
		t.Fatalf("prov stats nonzero with provenance disabled: %+v", res.Stats)
	}
}

// TestIncrementalProvenance: EvalIncrement records edges for the
// re-derivations the new facts enable, with the same recorder wiring.
func TestIncrementalProvenance(t *testing.T) {
	prog := MustParse(`
		reach(a, b) :- link(a, b).
		reach(a, c) :- link(a, b), reach(b, c).
	`)
	db := ctable.NewDatabase()
	link := ctable.NewTable("link", "src", "dst")
	link.MustInsert(nil, cond.Int(1), cond.Int(2))
	db.AddTable(link)
	base, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := prov.NewRecorder(0)
	inc, err := EvalIncrement(prog, base.DB, map[string][]ctable.Tuple{
		"link": {ctable.NewTuple([]cond.Term{cond.Int(2), cond.Int(3)}, cond.True())},
	}, Options{Prov: rec})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats.ProvEdges == 0 {
		t.Fatal("incremental run recorded no provenance")
	}
	x := prov.NewExplainer(rec, inc.DB)
	// reach(1,3) is new: its tree must chain through reach(2,3).
	tuples := x.Find("reach", "1|3")
	if len(tuples) != 1 {
		t.Fatalf("reach(1,3) matches: %d", len(tuples))
	}
	tr := x.Explain("reach", tuples[0])
	if tr.Rule == "" || len(tr.Children) != 2 {
		t.Fatalf("reach(1,3) tree:\n%s", tr)
	}
}
