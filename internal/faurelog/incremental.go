package faurelog

import (
	"fmt"
	"sort"
	"time"

	"faure/internal/cond"
	"faure/internal/ctable"
	"faure/internal/faultinject"
	"faure/internal/obs"
)

// seedCheckEvery is how many seeded facts pass between cancellation
// polls while EvalIncrement inserts its initial delta: coarse enough
// to stay off the hot path, fine enough that a canceled context stops
// a million-fact batch within microseconds.
const seedCheckEvery = 256

// EvalIncrement extends a previous evaluation with newly inserted EDB
// facts, re-deriving only what the additions enable: semi-naive
// propagation seeded with the new tuples instead of a from-scratch
// fixpoint. The paper's related work contrasts fauré with incremental
// engines (INCV, differential datalog); this entry point provides the
// corresponding capability for the insertion-monotone fragment.
//
// prev must be the database returned by a prior Eval of the same
// program (input relations plus derived ones); added maps relation
// names to the facts to insert. The program must be positive
// (negation is not insertion-monotone: a new fact can retract
// conclusions, which requires deletion propagation this engine does
// not implement — re-evaluate from scratch instead).
//
// Cancellation is honored exactly as in Eval: Options.Context (or a
// canceled Options.Budget) is polled while the new facts are seeded
// and at every propagation round, so a client disconnect aborts the
// increment at its next checkpoint with a Truncated partial result
// instead of running to completion. prev is never mutated — the seeded
// facts and re-derivations live in the engine's private store, so an
// aborted increment leaves the caller's database untouched. The
// faultinject point faurelog.increment.commit fires after propagation
// converges, immediately before the result database is assembled, so
// crash-recovery tests can fail the commit deterministically.
func EvalIncrement(prog *Program, prev *ctable.Database, added map[string][]ctable.Tuple, opts Options) (*Result, error) {
	for _, r := range prog.Rules {
		for _, a := range r.Body {
			if a.Neg {
				return nil, fmt.Errorf("faurelog: EvalIncrement requires a positive program (negated literal %v)", a)
			}
		}
	}
	idb := prog.IDB()
	for pred := range added {
		if idb[pred] {
			return nil, fmt.Errorf("faurelog: EvalIncrement cannot insert into derived predicate %s", pred)
		}
	}
	e, err := newEngine(prog, prev, opts)
	if err != nil {
		return nil, err
	}
	// Seed the dedup and absorption state with everything already
	// present, so re-derivations of existing tuples are no-ops.
	for name, tbl := range prev.Tables {
		seen := map[ctable.TupleID]struct{}{}
		for _, tp := range tbl.Tuples {
			seen[tp.Identity()] = struct{}{}
		}
		e.seen[name] = seen
		if !opts.NoAbsorb && idb[name] {
			byData := map[[2]uint64][]*cond.Formula{}
			for _, tp := range tbl.Tuples {
				d := tp.DataHash()
				byData[d] = append(byData[d], tp.Condition())
			}
			e.conds[name] = byData
		}
	}

	// Insert the new facts, recording the genuinely new ones as the
	// initial delta. The touched EDB relations are exported into the
	// result so successive increments see the accumulated facts.
	// Cancellation is polled every seedCheckEvery insertions, so a
	// canceled client aborts even a huge fact batch promptly; a trip
	// here degrades to a Truncated partial result exactly like a trip
	// during propagation.
	var runErr error
	seedDelta := delta{}
	addedPreds := make([]string, 0, len(added))
	for pred := range added {
		addedPreds = append(addedPreds, pred)
	}
	sort.Strings(addedPreds)
	seeded := 0
seedLoop:
	for _, pred := range addedPreds {
		tuples := added[pred]
		e.extraExport = append(e.extraExport, pred)
		rel := e.store.Rel(pred)
		if rel == nil {
			arity := -1
			if len(tuples) > 0 {
				arity = len(tuples[0].Values)
			}
			if arity < 0 {
				continue
			}
			rel = e.store.Ensure(pred, arity)
			e.noteArity(pred, arity)
		}
		seen := e.seen[pred]
		if seen == nil {
			seen = map[ctable.TupleID]struct{}{}
			e.seen[pred] = seen
		}
		for _, tp := range tuples {
			if seeded%seedCheckEvery == 0 {
				if err := e.bud.Check("increment seed"); err != nil {
					runErr = err
					break seedLoop
				}
			}
			seeded++
			if len(tp.Values) != rel.Arity {
				return nil, fmt.Errorf("faurelog: inserted tuple arity %d, relation %s has %d", len(tp.Values), pred, rel.Arity)
			}
			if tp.Condition().IsFalse() {
				continue
			}
			k := tp.Identity()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if err := rel.Insert(tp); err != nil {
				return nil, err
			}
			seedDelta[pred] = append(seedDelta[pred], tp)
		}
	}

	strata, err := Stratify(prog)
	if err != nil {
		return nil, err
	}
	for pred := range idb {
		e.derivedOrder = append(e.derivedOrder, pred)
	}
	start := time.Now()
	var evalSpan obs.Span
	if e.obsOn {
		evalSpan = e.o.StartSpan("eval",
			obs.Int("rules", int64(len(prog.Rules))), obs.Bool("incremental", true))
	}
	// Propagate through the strata in order; each stratum consumes the
	// deltas accumulated so far (its own head deltas feed later
	// strata).
	pending := seedDelta
	if runErr == nil {
		for si, preds := range strata {
			inStratum := map[string]bool{}
			for _, pr := range preds {
				inStratum[pr] = true
			}
			var rules []Rule
			for _, r := range e.prog.Rules {
				if inStratum[r.Head.Pred] {
					rules = append(rules, r)
				}
			}
			newHere, err := e.propagate(rules, pending, evalSpan, si)
			if err != nil {
				runErr = err
				break
			}
			for pred, tuples := range newHere {
				pending[pred] = append(pending[pred], tuples...)
			}
		}
	}
	// The increment's commit point: propagation has converged and the
	// result database is about to be assembled. Tests arm this point to
	// make a mid-update crash deterministic (the serve writer treats the
	// error as a failed apply and rolls back to the previous
	// generation).
	if runErr == nil && faultinject.Armed() {
		runErr = faultinject.Fire(faultinject.FaurelogIncrementCommit)
	}
	if runErr == nil && e.opts.NoEagerPrune {
		var sp obs.Span
		if e.obsOn {
			sp = evalSpan.StartChild("final-prune")
		}
		runErr = e.finalPrune()
		if e.obsOn {
			sp.End()
		}
	}
	// As in run(): wall clock and total solver time are both read once,
	// after every phase, so the split cannot misattribute late solver
	// work (the deferred prune) to the relational column; parallel runs
	// clamp at zero because summed per-worker solver time can exceed
	// the wall clock.
	e.stats.SQLTime = max(0, time.Since(start)-e.stats.SolverTime)
	e.captureInternStats()
	e.captureStoreStats()
	e.captureProvStats()
	if e.obsOn {
		e.reportTotals(evalSpan)
		evalSpan.End()
	}
	if runErr != nil {
		// Budget exhaustion degrades to a truncated partial result,
		// exactly as in scratch evaluation.
		if ex := asExceeded(runErr); ex != nil {
			res, rerr := e.result()
			if rerr != nil {
				return nil, rerr
			}
			res.Truncated = ex
			return res, nil
		}
		return nil, runErr
	}
	return e.result()
}

// propagate runs semi-naive rounds for one stratum's rules, starting
// from the given deltas (over any predicate, not just the recursive
// ones) and returning the tuples newly derived for this stratum's
// heads.
func (e *engine) propagate(rules []Rule, seed delta, evalSpan obs.Span, stratum int) (delta, error) {
	for _, r := range rules {
		e.store.Ensure(r.Head.Pred, len(r.Head.Args))
	}
	produced := delta{}
	cur := seed
	for iter := 0; ; iter++ {
		e.stats.Iterations++
		if iter >= e.opts.maxIters() {
			return nil, fmt.Errorf("faurelog: incremental fixpoint did not converge within %d iterations", e.opts.maxIters())
		}
		next := delta{}
		sink := func(pred string, tp ctable.Tuple) {
			next[pred] = append(next[pred], tp)
			produced[pred] = append(produced[pred], tp)
		}
		var units []unit
		for _, r := range rules {
			for i, a := range r.Body {
				d := cur[a.Pred]
				if len(d) == 0 {
					continue
				}
				units = append(units, unit{r: r, deltaIdx: i, delta: d})
			}
		}
		if err := e.runRound(units, sink, evalSpan, stratum, iter); err != nil {
			return nil, err
		}
		if len(units) == 0 || len(next) == 0 {
			return produced, nil
		}
		cur = next
	}
}
