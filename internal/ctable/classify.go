package ctable

import (
	"sort"

	"faure/internal/cond"
	"faure/internal/solver"
)

// AnswerStatus classifies a query answer relative to the unknowns —
// the vocabulary of partial analysis: an answer can be certain (in
// every possible world), merely possible, or impossible.
type AnswerStatus int

const (
	// Impossible: the answer holds in no possible world.
	Impossible AnswerStatus = iota
	// Possible: the answer holds in some worlds but not all.
	Possible
	// Certain: the answer holds in every possible world.
	Certain
)

// String renders the status.
func (s AnswerStatus) String() string {
	switch s {
	case Certain:
		return "certain"
	case Possible:
		return "possible"
	default:
		return "impossible"
	}
}

// Answer is one classified data part of a query result.
type Answer struct {
	// Tuple is the data part (rendered by DataKey of its values).
	Values []cond.Term
	// Status is the classification.
	Status AnswerStatus
	// Cond is the combined condition under which the answer holds
	// (true for certain answers after simplification).
	Cond *cond.Formula
}

// Classify groups a table's tuples by data part, combines their
// conditions by disjunction, and classifies each against the solver:
// valid → Certain, satisfiable → Possible, else Impossible (such
// answers are included so callers can see what eager pruning removed;
// filter by Status when only realisable answers matter). Answers come
// back sorted by data key for deterministic output.
func Classify(t *Table, s *solver.Solver) ([]Answer, error) {
	byKey := map[string]*Answer{}
	var keys []string
	for _, tp := range t.Tuples {
		k := tp.DataKey()
		a, ok := byKey[k]
		if !ok {
			a = &Answer{Values: tp.Values, Cond: cond.False()}
			byKey[k] = a
			keys = append(keys, k)
		}
		a.Cond = cond.Or(a.Cond, tp.Condition())
	}
	sort.Strings(keys)
	out := make([]Answer, 0, len(keys))
	for _, k := range keys {
		a := byKey[k]
		sat, err := s.Satisfiable(a.Cond)
		if err != nil {
			return nil, err
		}
		switch {
		case !sat:
			a.Status = Impossible
		default:
			valid, err := s.Valid(a.Cond)
			if err != nil {
				return nil, err
			}
			if valid {
				a.Status = Certain
			} else {
				a.Status = Possible
			}
		}
		out = append(out, *a)
	}
	return out, nil
}
