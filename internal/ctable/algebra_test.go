package ctable

import (
	"math/rand"
	"testing"

	"faure/internal/cond"
	"faure/internal/solver"
)

// table2PathPrime builds the paper's Pⁱ and C tables directly.
func table2PathPrime() (*Database, *Table, *Table) {
	db := NewDatabase()
	db.DeclareVar("x", solver.EnumDomain(cond.Str("ABC"), cond.Str("ADEC"), cond.Str("ABE")))
	db.DeclareVar("y", solver.Domain{})
	pi := NewTable("pi", "dest", "path")
	pi.MustInsert(cond.Or(
		cond.Compare(cond.CVar("x"), cond.Eq, cond.Str("ABC")),
		cond.Compare(cond.CVar("x"), cond.Eq, cond.Str("ADEC")),
	), cond.Str("1.2.3.4"), cond.CVar("x"))
	pi.MustInsert(cond.Compare(cond.CVar("y"), cond.Ne, cond.Str("1.2.3.4")),
		cond.CVar("y"), cond.Str("ABE"))
	pi.MustInsert(nil, cond.Str("1.2.3.6"), cond.Str("ADEC"))
	db.AddTable(pi)
	c := NewTable("c", "path", "cost")
	c.MustInsert(nil, cond.Str("ABC"), cond.Int(3))
	c.MustInsert(nil, cond.Str("ADEC"), cond.Int(4))
	c.MustInsert(nil, cond.Str("ABE"), cond.Int(3))
	db.AddTable(c)
	return db, pi, c
}

// TestAlgebraReproducesQ2: σ_{dest=1.2.3.4}(Pⁱ) ⋈ C projected to cost
// gives the paper's q2 answer — the "straightforward extension of SQL"
// route of §3.
func TestAlgebraReproducesQ2(t *testing.T) {
	db, pi, c := table2PathPrime()
	sel, err := Select(pi, Selection{Left: Column(0), Op: cond.Eq, Right: Constant(cond.Str("1.2.3.4"))})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := Join(sel, c, "j", [2]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Project(joined, "q2", 3)
	if err != nil {
		t.Fatal(err)
	}

	s := solver.New(db.Doms)
	byCost := map[int64]*cond.Formula{}
	for _, tp := range q2.Tuples {
		sat, err := s.Satisfiable(tp.Condition())
		if err != nil {
			t.Fatal(err)
		}
		if !sat {
			continue
		}
		cst := tp.Values[0].I
		prev := byCost[cst]
		if prev == nil {
			prev = cond.False()
		}
		byCost[cst] = cond.Or(prev, tp.Condition())
	}
	if len(byCost) != 2 {
		t.Fatalf("q2 should produce costs {3, 4}, got %v", byCost)
	}
	for cost, want := range map[int64]*cond.Formula{
		3: cond.Compare(cond.CVar("x"), cond.Eq, cond.Str("ABC")),
		4: cond.Compare(cond.CVar("x"), cond.Eq, cond.Str("ADEC")),
	} {
		eq, err := s.Equivalent(byCost[cost], want)
		if err != nil || !eq {
			t.Errorf("cost %d condition %v, want %v", cost, byCost[cost], want)
		}
	}
}

// TestAlgebraLosslessness: the algebra expression evaluated on the
// c-table equals per-world evaluation of the plain operators — the
// c-table promise, checked over all instantiations of $x and a sample
// of $y values.
func TestAlgebraLosslessness(t *testing.T) {
	db, pi, c := table2PathPrime()
	// Make $y finite for enumeration.
	db.DeclareVar("y", solver.EnumDomain(cond.Str("1.2.3.4"), cond.Str("1.2.3.5")))

	sel, err := Select(pi, Selection{Left: Column(0), Op: cond.Eq, Right: Constant(cond.Str("1.2.3.5"))})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := Join(sel, c, "j", [2]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	q3, err := Project(joined, "q3", 3)
	if err != nil {
		t.Fatal(err)
	}

	s := solver.New(db.Doms)
	err = s.Worlds([]string{"x", "y"}, func(assign map[string]cond.Term) bool {
		// Concrete evaluation: instantiate Pⁱ, filter, join, project.
		want := map[int64]bool{}
		for _, tp := range pi.Tuples {
			st := tp.Subst(assign)
			if !st.Condition().IsTrue() {
				continue
			}
			if !st.Values[0].Equal(cond.Str("1.2.3.5")) {
				continue
			}
			for _, ct := range c.Tuples {
				if ct.Values[0].Equal(st.Values[1]) {
					want[ct.Values[1].I] = true
				}
			}
		}
		got := map[int64]bool{}
		for _, tp := range q3.Tuples {
			st := tp.Subst(assign)
			if st.Condition().IsTrue() {
				got[st.Values[0].I] = true
			}
		}
		if len(got) != len(want) {
			t.Errorf("world %v: got %v want %v", assign, got, want)
		}
		for k := range want {
			if !got[k] {
				t.Errorf("world %v: missing cost %d", assign, k)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectConstantFold(t *testing.T) {
	tbl := NewTable("r", "a")
	tbl.MustInsert(nil, cond.Str("A"))
	tbl.MustInsert(nil, cond.Str("B"))
	out, err := Select(tbl, Selection{Left: Column(0), Op: cond.Eq, Right: Constant(cond.Str("A"))})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Tuples[0].Values[0].Equal(cond.Str("A")) {
		t.Errorf("constant selection should fold: %v", out)
	}
}

func TestSelectColumnToColumn(t *testing.T) {
	tbl := NewTable("r", "a", "b")
	tbl.MustInsert(nil, cond.CVar("u"), cond.Str("X"))
	out, err := Select(tbl, Selection{Left: Column(0), Op: cond.Eq, Right: Column(1)})
	if err != nil {
		t.Fatal(err)
	}
	want := cond.Compare(cond.CVar("u"), cond.Eq, cond.Str("X"))
	if out.Len() != 1 || !out.Tuples[0].Condition().Equal(want) {
		t.Errorf("column-column selection condition = %v, want %v", out.Tuples[0].Condition(), want)
	}
}

func TestProjectErrors(t *testing.T) {
	tbl := NewTable("r", "a")
	if _, err := Project(tbl, "p", 3); err == nil {
		t.Errorf("out-of-range projection should error")
	}
}

func TestJoinErrorsAndSchema(t *testing.T) {
	a := NewTable("a", "x", "y")
	b := NewTable("b", "z")
	if _, err := Join(a, b, "j", [2]int{5, 0}); err == nil {
		t.Errorf("out-of-range join column should error")
	}
	a.MustInsert(nil, cond.Int(1), cond.Int(2))
	b.MustInsert(nil, cond.Int(2))
	j, err := Join(a, b, "j", [2]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if j.Schema.Arity() != 3 || j.Len() != 1 {
		t.Errorf("join schema/content wrong: %v", j)
	}
	// Non-matching constants fold away.
	b2 := NewTable("b2", "z")
	b2.MustInsert(nil, cond.Int(9))
	j2, err := Join(a, b2, "j2", [2]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 0 {
		t.Errorf("non-matching join should be empty, got %v", j2)
	}
}

func TestUnionAndRename(t *testing.T) {
	a := NewTable("a", "x")
	a.MustInsert(nil, cond.Int(1))
	b := NewTable("b", "x")
	b.MustInsert(nil, cond.Int(2))
	u, err := Union(a, b, "u")
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Errorf("union length %d", u.Len())
	}
	if _, err := Union(a, NewTable("c", "p", "q"), "bad"); err == nil {
		t.Errorf("arity mismatch union should error")
	}
	r, err := Rename(u, "renamed", "col")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.Name != "renamed" || r.Schema.Attrs[0] != "col" {
		t.Errorf("rename wrong: %v", r.Schema)
	}
	if _, err := Rename(u, "bad", "a", "b"); err == nil {
		t.Errorf("rename with wrong attr count should error")
	}
}

// TestAlgebraAgreesWithFaurelogShape: a σ-⋈-π pipeline matches the
// corresponding single-rule query structure — checked here at the
// world level for the Figure-1-like failover table.
func TestAlgebraSelectJoinAgainstWorlds(t *testing.T) {
	db := NewDatabase()
	db.DeclareVar("x", solver.BoolDomain())
	f := NewTable("f", "src", "dst")
	f.MustInsert(cond.Compare(cond.CVar("x"), cond.Eq, cond.Int(1)), cond.Int(1), cond.Int(2))
	f.MustInsert(cond.Compare(cond.CVar("x"), cond.Eq, cond.Int(0)), cond.Int(1), cond.Int(3))
	f.MustInsert(nil, cond.Int(2), cond.Int(4))
	f.MustInsert(nil, cond.Int(3), cond.Int(4))
	db.AddTable(f)

	// Two-hop pairs: f ⋈ f on dst=src, projected to endpoints.
	j, err := Join(f, f, "j", [2]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Project(j, "two", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := solver.New(db.Doms)
	err = s.Worlds([]string{"x"}, func(assign map[string]cond.Term) bool {
		got := map[string]bool{}
		for _, tp := range two.Tuples {
			st := tp.Subst(assign)
			if st.Condition().IsTrue() {
				got[st.DataKey()] = true
			}
		}
		// Concrete: exactly one two-hop path 1→4 in each world.
		if len(got) != 1 || !got["1|4"] {
			t.Errorf("world %v: two-hop pairs %v, want {1|4}", assign, got)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlgebraAgreesWithFaurelogRandom: random select-join-project
// pipelines agree with the corresponding single-rule fauré-log query
// on conditioned tables, world by world.
func TestAlgebraAgreesWithFaurelogRandom(t *testing.T) {
	// The fauré-log side lives in a higher-level package, so compare
	// against explicit per-world evaluation instead: algebra on the
	// c-table vs plain relational algebra per world.
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		db := NewDatabase()
		db.DeclareVar("u", solver.BoolDomain())
		db.DeclareVar("v", solver.BoolDomain())
		mkCond := func() *cond.Formula {
			switch rnd.Intn(3) {
			case 0:
				return cond.True()
			case 1:
				return cond.Compare(cond.CVar("u"), cond.Eq, cond.Int(int64(rnd.Intn(2))))
			default:
				return cond.Compare(cond.CVar("v"), cond.Eq, cond.Int(int64(rnd.Intn(2))))
			}
		}
		consts := []cond.Term{cond.Str("A"), cond.Str("B"), cond.Str("C")}
		a := NewTable("a", "x", "y")
		b := NewTable("b", "y", "z")
		for i := 0; i < 4+rnd.Intn(4); i++ {
			a.MustInsert(mkCond(), consts[rnd.Intn(3)], consts[rnd.Intn(3)])
			b.MustInsert(mkCond(), consts[rnd.Intn(3)], consts[rnd.Intn(3)])
		}
		db.AddTable(a)
		db.AddTable(b)

		selConst := consts[rnd.Intn(3)]
		sel, err := Select(a, Selection{Left: Column(0), Op: cond.Eq, Right: Constant(selConst)})
		if err != nil {
			t.Fatal(err)
		}
		joined, err := Join(sel, b, "j", [2]int{1, 0})
		if err != nil {
			t.Fatal(err)
		}
		proj, err := Project(joined, "p", 0, 3)
		if err != nil {
			t.Fatal(err)
		}

		s := solver.New(db.Doms)
		err = s.Worlds([]string{"u", "v"}, func(assign map[string]cond.Term) bool {
			// Concrete pipeline.
			want := map[string]bool{}
			for _, ta := range a.Tuples {
				sa := ta.Subst(assign)
				if !sa.Condition().IsTrue() || !sa.Values[0].Equal(selConst) {
					continue
				}
				for _, tb := range b.Tuples {
					sb := tb.Subst(assign)
					if !sb.Condition().IsTrue() || !sb.Values[0].Equal(sa.Values[1]) {
						continue
					}
					want[sa.Values[0].String()+"|"+sb.Values[1].String()] = true
				}
			}
			got := map[string]bool{}
			for _, tp := range proj.Tuples {
				st := tp.Subst(assign)
				if st.Condition().IsTrue() {
					got[st.DataKey()] = true
				}
			}
			if len(got) != len(want) {
				t.Errorf("trial %d world %v: got %v want %v", trial, assign, got, want)
				return false
			}
			for k := range want {
				if !got[k] {
					t.Errorf("trial %d world %v: missing %s", trial, assign, k)
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
