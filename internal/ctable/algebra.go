package ctable

import (
	"fmt"

	"faure/internal/cond"
)

// This file implements the extended relational algebra over c-tables
// described in the paper's §3 (after Imieliński–Lipski): each operator
// manipulates both the data part and the condition of every tuple, so
// that the algebra is loss-less — evaluating an algebra expression on
// a c-table is equivalent to evaluating the plain relational operator
// on every possible world. The paper uses this algebra as the baseline
// ("convenient for ad-hoc data retrieval") that fauré-log replaces for
// program analysis; tests check the two agree on single-rule queries.
//
// Relational difference is deliberately absent: c-tables are not
// closed under it in this basic form (the classical limitation), which
// is exactly why fauré-log's "not derivable" negation lives on the
// datalog side.

// Operand is one side of a selection predicate: a column of the
// operand table or a constant of the c-domain.
type Operand struct {
	Col   int       // column index; -1 for a constant
	Const cond.Term // used when Col == -1
}

// Column references the i-th attribute.
func Column(i int) Operand { return Operand{Col: i} }

// Constant embeds a c-domain symbol.
func Constant(t cond.Term) Operand { return Operand{Col: -1, Const: t} }

func (o Operand) resolve(tp Tuple) (cond.Term, error) {
	if o.Col < 0 {
		return o.Const, nil
	}
	if o.Col >= len(tp.Values) {
		return cond.Term{}, fmt.Errorf("ctable: column %d out of range (arity %d)", o.Col, len(tp.Values))
	}
	return tp.Values[o.Col], nil
}

// Selection is one predicate of a σ: Left op Right.
type Selection struct {
	Left  Operand
	Op    cond.Op
	Right Operand
}

// Select (σ) keeps each tuple with its condition strengthened by the
// predicates; tuples whose strengthened condition is literally false
// are dropped. Constants compare directly; any operand holding a
// c-variable turns the predicate into a condition atom — the c-table
// form of selection.
func Select(t *Table, preds ...Selection) (*Table, error) {
	out := &Table{Schema: t.Schema}
	for _, tp := range t.Tuples {
		c := tp.Condition()
		ok := true
		for _, p := range preds {
			l, err := p.Left.resolve(tp)
			if err != nil {
				return nil, err
			}
			r, err := p.Right.resolve(tp)
			if err != nil {
				return nil, err
			}
			c = cond.And(c, cond.Compare(l, p.Op, r))
			if c.IsFalse() {
				ok = false
				break
			}
		}
		if ok {
			out.Tuples = append(out.Tuples, NewTuple(tp.Values, c))
		}
	}
	return out, nil
}

// Project (π) keeps the given columns; duplicate data parts keep their
// separate conditions (the bag-of-conditioned-tuples view; Normalize
// merges them by OR when a set view is wanted).
func Project(t *Table, name string, cols ...int) (*Table, error) {
	attrs := make([]string, len(cols))
	for i, c := range cols {
		if c < 0 || c >= t.Schema.Arity() {
			return nil, fmt.Errorf("ctable: project column %d out of range (arity %d)", c, t.Schema.Arity())
		}
		attrs[i] = t.Schema.Attrs[c]
	}
	out := &Table{Schema: Schema{Name: name, Attrs: attrs}}
	for _, tp := range t.Tuples {
		vals := make([]cond.Term, len(cols))
		for i, c := range cols {
			vals[i] = tp.Values[c]
		}
		out.Tuples = append(out.Tuples, NewTuple(vals, tp.Condition()))
	}
	return out, nil
}

// Join (⋈) concatenates every pair of tuples, with condition
// φ₁ ∧ φ₂ ∧ φ(t₁, t₂) where φ(t₁, t₂) states equality of the join
// columns — exactly the paper's description of the c-table join. The
// on pairs are (column of a, column of b). Pairs whose combined
// condition is literally false are dropped.
func Join(a, b *Table, name string, on ...[2]int) (*Table, error) {
	for _, p := range on {
		if p[0] < 0 || p[0] >= a.Schema.Arity() || p[1] < 0 || p[1] >= b.Schema.Arity() {
			return nil, fmt.Errorf("ctable: join columns %v out of range", p)
		}
	}
	attrs := append(append([]string{}, a.Schema.Attrs...), b.Schema.Attrs...)
	out := &Table{Schema: Schema{Name: name, Attrs: attrs}}
	for _, ta := range a.Tuples {
		for _, tb := range b.Tuples {
			c := cond.And(ta.Condition(), tb.Condition())
			for _, p := range on {
				c = cond.And(c, cond.Compare(ta.Values[p[0]], cond.Eq, tb.Values[p[1]]))
				if c.IsFalse() {
					break
				}
			}
			if c.IsFalse() {
				continue
			}
			vals := append(append([]cond.Term{}, ta.Values...), tb.Values...)
			out.Tuples = append(out.Tuples, NewTuple(vals, c))
		}
	}
	return out, nil
}

// Union (∪) concatenates two union-compatible c-tables.
func Union(a, b *Table, name string) (*Table, error) {
	if a.Schema.Arity() != b.Schema.Arity() {
		return nil, fmt.Errorf("ctable: union of arities %d and %d", a.Schema.Arity(), b.Schema.Arity())
	}
	out := &Table{Schema: Schema{Name: name, Attrs: a.Schema.Attrs}}
	out.Tuples = append(out.Tuples, a.Tuples...)
	out.Tuples = append(out.Tuples, b.Tuples...)
	return out, nil
}

// Rename gives the table a new name and optionally new attributes.
func Rename(t *Table, name string, attrs ...string) (*Table, error) {
	if len(attrs) == 0 {
		attrs = t.Schema.Attrs
	}
	if len(attrs) != t.Schema.Arity() {
		return nil, fmt.Errorf("ctable: rename with %d attributes, arity is %d", len(attrs), t.Schema.Arity())
	}
	out := &Table{Schema: Schema{Name: name, Attrs: attrs}, Tuples: t.Tuples}
	return out, nil
}
