// Package ctable implements conditional tables (c-tables), the data
// model of fauré. A c-table is a relation whose tuples may contain
// c-variables in place of constants and whose every tuple carries a
// condition — a boolean formula over c-variables — stating in which
// possible worlds the tuple is present.
//
// A single c-table therefore represents a set of ordinary relations
// (one per satisfying assignment of the c-variables); the package also
// provides possible-world enumeration, which the tests use to verify
// the paper's loss-lessness property: querying the c-table is
// indistinguishable from querying every world it stands for.
package ctable

import (
	"fmt"
	"sort"
	"strings"

	"faure/internal/cond"
	"faure/internal/solver"
)

// Schema names a relation and its attributes.
type Schema struct {
	Name  string
	Attrs []string
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Attrs) }

// String renders the schema as Name(attr1, ..., attrN).
func (s Schema) String() string {
	return s.Name + "(" + strings.Join(s.Attrs, ", ") + ")"
}

// Tuple is a conditioned row: Values holds c-domain symbols (constants
// or c-variables), Cond states when the row is present. A nil Cond is
// treated as true.
type Tuple struct {
	Values []cond.Term
	Cond   *cond.Formula
}

// NewTuple builds a tuple; a nil condition is normalised to true.
func NewTuple(values []cond.Term, c *cond.Formula) Tuple {
	if c == nil {
		c = cond.True()
	}
	return Tuple{Values: values, Cond: c}
}

// Condition returns the tuple's condition, never nil.
func (t Tuple) Condition() *cond.Formula {
	if t.Cond == nil {
		return cond.True()
	}
	return t.Cond
}

// DataKey identifies the data part of the tuple (values only).
func (t Tuple) DataKey() string {
	var b strings.Builder
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// Key identifies the tuple up to canonical condition equality. It
// materialises strings and exists for dumps, goldens and diagnostics;
// hot-path dedup uses Identity.
func (t Tuple) Key() string {
	return t.DataKey() + "  [" + t.Condition().Key() + "]"
}

// TupleID identifies a tuple without materialising strings: a 128-bit
// hash of the data part plus the interned id of the condition. Two
// tuples with equal TupleIDs have (up to the negligible 128-bit
// collision probability) identical values and the identical canonical
// condition. Condition ids are process-local, so TupleIDs must never
// be serialised or compared across runs.
type TupleID struct {
	D1, D2 uint64
	Cond   uint64
}

const (
	fnvOffset64  = 14695981039346656037
	fnvOffset64b = 0xcbf29ce484222325 ^ 0x9e3779b97f4a7c15 // independent second stream
	fnvPrime64   = 1099511628211
)

// DataHash returns a 128-bit hash of the tuple's data part (two
// independent FNV-style streams over the same bytes), the no-allocation
// counterpart of DataKey.
func (t Tuple) DataHash() [2]uint64 {
	var h1, h2 uint64 = fnvOffset64, fnvOffset64b
	mix := func(b byte) {
		h1 = (h1 ^ uint64(b)) * fnvPrime64 // FNV-1a
		h2 = h2*fnvPrime64 ^ uint64(b)     // FNV-1
	}
	mixU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(v))
			v >>= 8
		}
	}
	for _, v := range t.Values {
		mix(byte(v.Kind))
		mixU64(uint64(v.I))
		mixU64(uint64(len(v.S)))
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return [2]uint64{h1, h2}
}

// Identity returns the tuple's hot-path identity: data hash plus the
// interned condition id.
func (t Tuple) Identity() TupleID {
	d := t.DataHash()
	return TupleID{D1: d[0], D2: d[1], Cond: t.Condition().ID()}
}

// String renders the tuple in the concrete syntax used by the CLI:
// (v1, v2)[condition], with a true condition omitted.
func (t Tuple) String() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = v.String()
	}
	s := "(" + strings.Join(parts, ", ") + ")"
	if c := t.Condition(); !c.IsTrue() {
		s += "[" + c.String() + "]"
	}
	return s
}

// Ground reports whether the tuple's values contain no c-variables.
func (t Tuple) Ground() bool {
	for _, v := range t.Values {
		if v.IsCVar() {
			return false
		}
	}
	return true
}

// Subst applies a c-variable assignment to both values and condition.
func (t Tuple) Subst(m map[string]cond.Term) Tuple {
	vals := make([]cond.Term, len(t.Values))
	for i, v := range t.Values {
		if v.IsCVar() {
			if r, ok := m[v.S]; ok {
				vals[i] = r
				continue
			}
		}
		vals[i] = v
	}
	return Tuple{Values: vals, Cond: t.Condition().Subst(m)}
}

// Table is a c-table: a schema plus conditioned tuples.
type Table struct {
	Schema Schema
	Tuples []Tuple
}

// NewTable builds an empty table with the given schema.
func NewTable(name string, attrs ...string) *Table {
	return &Table{Schema: Schema{Name: name, Attrs: attrs}}
}

// Insert appends a tuple after checking its arity. Contradictory
// conditions (literally false) are dropped.
func (t *Table) Insert(tp Tuple) error {
	if len(tp.Values) != t.Schema.Arity() {
		return fmt.Errorf("ctable: arity mismatch inserting into %s: got %d values, want %d",
			t.Schema.Name, len(tp.Values), t.Schema.Arity())
	}
	if tp.Condition().IsFalse() {
		return nil
	}
	t.Tuples = append(t.Tuples, tp)
	return nil
}

// MustInsert is Insert for static construction; it panics on arity
// mismatch.
//
// Invariant, not an error path: callers (topology compilers, the RIB
// generator) build the values slice to the schema they just declared,
// so a mismatch is a bug in the generator, not a data condition.
// Parsed input goes through Insert, which returns the error.
func (t *Table) MustInsert(c *cond.Formula, values ...cond.Term) {
	if err := t.Insert(NewTuple(values, c)); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.Tuples) }

// Clone returns a deep-enough copy (tuples are value types; formulas
// are immutable and shared).
func (t *Table) Clone() *Table {
	c := &Table{Schema: t.Schema, Tuples: make([]Tuple, len(t.Tuples))}
	copy(c.Tuples, t.Tuples)
	return c
}

// CVars returns the sorted, duplicate-free c-variables appearing
// anywhere in the table (values or conditions).
func (t *Table) CVars() []string {
	set := map[string]bool{}
	for _, tp := range t.Tuples {
		for _, v := range tp.Values {
			if v.IsCVar() {
				set[v.S] = true
			}
		}
		for _, n := range tp.Condition().CVars() {
			set[n] = true
		}
	}
	return sortedKeys(set)
}

// String renders the table with a header row, for diagnostics.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Schema.String())
	b.WriteByte('\n')
	for _, tp := range t.Tuples {
		b.WriteString("  ")
		b.WriteString(tp.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Database is a set of c-tables plus the registry of c-variable
// domains that gives the unknowns their meaning.
type Database struct {
	Tables map[string]*Table
	Doms   solver.Domains
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Tables: map[string]*Table{}, Doms: solver.Domains{}}
}

// AddTable registers a table; an existing table with the same name is
// replaced.
func (db *Database) AddTable(t *Table) { db.Tables[t.Schema.Name] = t }

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table { return db.Tables[name] }

// DeclareVar registers a c-variable with its domain. Re-declaring a
// variable overwrites its domain.
func (db *Database) DeclareVar(name string, d solver.Domain) { db.Doms[name] = d }

// Clone copies the database structure (tables are cloned; the domain
// map is copied shallowly — domains are immutable in practice).
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for n, t := range db.Tables {
		c.Tables[n] = t.Clone()
	}
	for n, d := range db.Doms {
		c.Doms[n] = d
	}
	return c
}

// TableNames returns the sorted table names.
func (db *Database) TableNames() []string {
	set := map[string]bool{}
	for n := range db.Tables {
		set[n] = true
	}
	return sortedKeys(set)
}

// String renders every table, sorted by name.
func (db *Database) String() string {
	var b strings.Builder
	for _, n := range db.TableNames() {
		b.WriteString(db.Tables[n].String())
	}
	return b.String()
}

// CVars returns the sorted c-variables used anywhere in the database.
func (db *Database) CVars() []string {
	set := map[string]bool{}
	for _, t := range db.Tables {
		for _, n := range t.CVars() {
			set[n] = true
		}
	}
	return sortedKeys(set)
}

// World is one concrete instantiation of a database: an assignment of
// c-variables and the resulting ordinary relations.
type World struct {
	Assign map[string]cond.Term
	Tables map[string][][]cond.Term
}

// EachWorld enumerates the possible worlds of the database over the
// given c-variables (all must have finite domains): for each total
// assignment it materialises the concrete tables — substituting values
// and keeping exactly the tuples whose condition evaluates true — and
// calls fn. fn returning false stops the enumeration. Tuples whose
// substituted condition still contains free c-variables (outside the
// enumerated set) cause an error, since the world would be ambiguous.
func (db *Database) EachWorld(vars []string, fn func(World) bool) error {
	s := solver.New(db.Doms)
	var worldErr error
	err := s.Worlds(vars, func(assign map[string]cond.Term) bool {
		w := World{Assign: assign, Tables: map[string][][]cond.Term{}}
		for name, t := range db.Tables {
			rows := make([][]cond.Term, 0, len(t.Tuples))
			for _, tp := range t.Tuples {
				st := tp.Subst(assign)
				c := st.Condition()
				if !c.IsTrue() && !c.IsFalse() {
					worldErr = fmt.Errorf("ctable: world for %v leaves condition %v undecided", assign, c)
					return false
				}
				if c.IsTrue() {
					rows = append(rows, st.Values)
				}
			}
			w.Tables[name] = rows
		}
		return fn(w)
	})
	if worldErr != nil {
		return worldErr
	}
	return err
}

// Normalize prunes tuples with unsatisfiable conditions and merges
// exact-duplicate rows (same data part) by OR-ing their conditions.
// It returns the number of tuples removed. This mirrors step (3) of
// the paper's PostgreSQL implementation, where Z3 deletes
// contradictory tuples.
func (db *Database) Normalize(s *solver.Solver) (int, error) {
	removed := 0
	for _, t := range db.Tables {
		kept := t.Tuples[:0]
		byData := map[string]int{}
		for _, tp := range t.Tuples {
			sat, err := s.Satisfiable(tp.Condition())
			if err != nil {
				return removed, err
			}
			if !sat {
				removed++
				continue
			}
			dk := tp.DataKey()
			if i, ok := byData[dk]; ok {
				kept[i].Cond = cond.Or(kept[i].Condition(), tp.Condition())
				removed++
				continue
			}
			byData[dk] = len(kept)
			kept = append(kept, tp)
		}
		t.Tuples = kept
	}
	return removed, nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
