package ctable

import (
	"strings"
	"testing"

	"faure/internal/cond"
	"faure/internal/solver"
)

func TestTupleBasics(t *testing.T) {
	tp := NewTuple([]cond.Term{cond.Str("A"), cond.CVar("x")}, nil)
	if !tp.Condition().IsTrue() {
		t.Errorf("nil condition should normalise to true")
	}
	if tp.Ground() {
		t.Errorf("tuple with c-var should not be ground")
	}
	g := NewTuple([]cond.Term{cond.Str("A"), cond.Int(1)}, cond.True())
	if !g.Ground() {
		t.Errorf("constant tuple should be ground")
	}
	if tp.DataKey() == g.DataKey() {
		t.Errorf("different tuples share a data key")
	}
}

func TestTupleString(t *testing.T) {
	tp := NewTuple([]cond.Term{cond.Int(1), cond.Int(2)},
		cond.Compare(cond.CVar("x"), cond.Eq, cond.Int(1)))
	s := tp.String()
	if !strings.Contains(s, "(1, 2)") || !strings.Contains(s, "$x = 1") {
		t.Errorf("String() = %q", s)
	}
	plain := NewTuple([]cond.Term{cond.Int(1)}, cond.True())
	if strings.Contains(plain.String(), "[") {
		t.Errorf("true condition should be omitted: %q", plain.String())
	}
}

func TestTupleSubst(t *testing.T) {
	tp := NewTuple(
		[]cond.Term{cond.CVar("x"), cond.Str("B")},
		cond.Compare(cond.CVar("x"), cond.Ne, cond.Str("B")),
	)
	st := tp.Subst(map[string]cond.Term{"x": cond.Str("A")})
	if !st.Values[0].Equal(cond.Str("A")) {
		t.Errorf("value substitution failed: %v", st.Values)
	}
	if !st.Condition().IsTrue() {
		t.Errorf("condition A != B should evaluate true, got %v", st.Condition())
	}
}

func TestTableInsertArity(t *testing.T) {
	tbl := NewTable("r", "a", "b")
	if err := tbl.Insert(NewTuple([]cond.Term{cond.Int(1)}, nil)); err == nil {
		t.Errorf("arity mismatch should error")
	}
	if err := tbl.Insert(NewTuple([]cond.Term{cond.Int(1), cond.Int(2)}, nil)); err != nil {
		t.Errorf("valid insert failed: %v", err)
	}
	// False conditions are dropped silently.
	if err := tbl.Insert(NewTuple([]cond.Term{cond.Int(3), cond.Int(4)}, cond.False())); err != nil {
		t.Errorf("false-conditioned insert should be a no-op, got %v", err)
	}
	if tbl.Len() != 1 {
		t.Errorf("table should hold 1 tuple, got %d", tbl.Len())
	}
}

func TestTableCVars(t *testing.T) {
	tbl := NewTable("r", "a")
	tbl.MustInsert(cond.Compare(cond.CVar("c"), cond.Eq, cond.Int(1)), cond.CVar("a"))
	tbl.MustInsert(nil, cond.CVar("b"))
	got := tbl.CVars()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("CVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CVars = %v, want %v", got, want)
		}
	}
}

func buildFailoverDB() *Database {
	db := NewDatabase()
	db.DeclareVar("x", solver.BoolDomain())
	f := NewTable("f", "src", "dst")
	f.MustInsert(cond.Compare(cond.CVar("x"), cond.Eq, cond.Int(1)), cond.Int(1), cond.Int(2))
	f.MustInsert(cond.Compare(cond.CVar("x"), cond.Eq, cond.Int(0)), cond.Int(1), cond.Int(3))
	db.AddTable(f)
	return db
}

func TestEachWorld(t *testing.T) {
	db := buildFailoverDB()
	worlds := 0
	rows := map[string]int{}
	err := db.EachWorld([]string{"x"}, func(w World) bool {
		worlds++
		for _, row := range w.Tables["f"] {
			rows[row[1].String()]++
		}
		return true
	})
	if err != nil {
		t.Fatalf("EachWorld: %v", err)
	}
	if worlds != 2 {
		t.Errorf("expected 2 worlds, got %d", worlds)
	}
	// Each world contains exactly one of the two alternatives.
	if rows["2"] != 1 || rows["3"] != 1 {
		t.Errorf("world rows wrong: %v", rows)
	}
}

func TestEachWorldUndecided(t *testing.T) {
	db := buildFailoverDB()
	db.DeclareVar("y", solver.BoolDomain())
	tbl := db.Table("f")
	tbl.MustInsert(cond.Compare(cond.CVar("y"), cond.Eq, cond.Int(1)), cond.Int(2), cond.Int(4))
	// Enumerating only x leaves $y undecided.
	err := db.EachWorld([]string{"x"}, func(w World) bool { return true })
	if err == nil {
		t.Errorf("partial enumeration should report undecided conditions")
	}
}

func TestNormalize(t *testing.T) {
	db := NewDatabase()
	db.DeclareVar("x", solver.BoolDomain())
	x := cond.CVar("x")
	tbl := NewTable("r", "a")
	// Contradictory condition: removed.
	tbl.MustInsert(cond.And(
		cond.Compare(x, cond.Eq, cond.Int(0)),
		cond.Compare(x, cond.Eq, cond.Int(1)),
	), cond.Str("A"))
	// Duplicate data parts: merged by OR.
	tbl.MustInsert(cond.Compare(x, cond.Eq, cond.Int(0)), cond.Str("B"))
	tbl.MustInsert(cond.Compare(x, cond.Eq, cond.Int(1)), cond.Str("B"))
	db.AddTable(tbl)

	s := solver.New(db.Doms)
	removed, err := db.Normalize(s)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if removed != 2 {
		t.Errorf("removed = %d, want 2 (one contradictory, one merged)", removed)
	}
	if db.Table("r").Len() != 1 {
		t.Fatalf("table should have 1 tuple, got %d", db.Table("r").Len())
	}
	merged := db.Table("r").Tuples[0]
	ok, err := s.Valid(merged.Condition())
	if err != nil || !ok {
		t.Errorf("merged condition should be valid (x=0 || x=1), got %v", merged.Condition())
	}
}

func TestDatabaseCloneIndependence(t *testing.T) {
	db := buildFailoverDB()
	c := db.Clone()
	c.Table("f").MustInsert(nil, cond.Int(9), cond.Int(9))
	if db.Table("f").Len() == c.Table("f").Len() {
		t.Errorf("clone should be independent")
	}
	c.DeclareVar("zz", solver.BoolDomain())
	if _, ok := db.Doms["zz"]; ok {
		t.Errorf("clone domains should be independent")
	}
}

func TestDatabaseStringAndNames(t *testing.T) {
	db := buildFailoverDB()
	if got := db.TableNames(); len(got) != 1 || got[0] != "f" {
		t.Errorf("TableNames = %v", got)
	}
	if s := db.String(); !strings.Contains(s, "f(src, dst)") {
		t.Errorf("String missing schema: %q", s)
	}
	if vs := db.CVars(); len(vs) != 1 || vs[0] != "x" {
		t.Errorf("CVars = %v", vs)
	}
}

func TestClassify(t *testing.T) {
	db := NewDatabase()
	db.DeclareVar("x", solver.BoolDomain())
	x := cond.CVar("x")
	tbl := NewTable("r", "a")
	// Certain: derived under x=1 and under x=0.
	tbl.MustInsert(cond.Compare(x, cond.Eq, cond.Int(1)), cond.Str("C"))
	tbl.MustInsert(cond.Compare(x, cond.Eq, cond.Int(0)), cond.Str("C"))
	// Possible: only under x=1.
	tbl.MustInsert(cond.Compare(x, cond.Eq, cond.Int(1)), cond.Str("P"))
	// Impossible: contradictory (inserted directly, bypassing pruning).
	tbl.Tuples = append(tbl.Tuples, NewTuple([]cond.Term{cond.Str("I")}, cond.And(
		cond.Compare(x, cond.Eq, cond.Int(0)),
		cond.Compare(x, cond.Eq, cond.Int(1)),
	)))
	s := solver.New(db.Doms)
	answers, err := Classify(tbl, s)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]AnswerStatus{}
	for _, a := range answers {
		got[a.Values[0].S] = a.Status
	}
	if got["C"] != Certain || got["P"] != Possible || got["I"] != Impossible {
		t.Errorf("classification wrong: %v", got)
	}
	// Statuses render.
	if Certain.String() != "certain" || Possible.String() != "possible" || Impossible.String() != "impossible" {
		t.Errorf("status strings wrong")
	}
	// Deterministic order by data key.
	if answers[0].Values[0].S > answers[1].Values[0].S {
		t.Errorf("answers not sorted: %v", answers)
	}
}
