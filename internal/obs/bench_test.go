package obs

import (
	"testing"
	"time"
)

// BenchmarkNopObserver quantifies the disabled-path cost the analysis
// layers pay per instrumentation site: it must stay allocation-free.
func BenchmarkNopObserver(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Nop.Count("c", 1)
		Nop.ObserveDuration("d", time.Microsecond)
		sp := Nop.StartSpan("s")
		sp.End()
	}
}

// BenchmarkRegistryCount is the enabled-path counter cost (one mutex
// round trip).
func BenchmarkRegistryCount(b *testing.B) {
	r := NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Count("c", 1)
	}
}

// BenchmarkRegistryObserve is the enabled-path distribution cost.
func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe("v", float64(i))
	}
}

// BenchmarkRegistrySpan is the enabled-path span cost (two clock
// reads, two mutex round trips).
func BenchmarkRegistrySpan(b *testing.B) {
	r := NewRegistry()
	r.SetMaxSpans(1 << 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("s")
		sp.End()
	}
	b.StopTimer()
	// Reset the tree so repeated runs do not retain b.N nodes.
	r.roots = nil
}
