// Package obs is the unified observability layer of the fauré
// reproduction: counters, gauges, duration and value distributions
// (with p50/p95/p99 summaries), and hierarchical spans with structured
// attributes, all behind one Observer interface with a no-op default.
//
// Every analysis layer — the fauré-log engine, the condition solver,
// the containment and rewrite machinery, the verifier ladder — reports
// into an Observer it is handed; a nil observer costs the hot paths a
// single branch (callers guard instrumentation behind an enabled flag
// and the no-op implementation does not read the clock). The concrete
// Registry implementation is safe for concurrent use and renders its
// state as text or JSON, and debug.go serves it over HTTP next to
// pprof and expvar.
//
// The package depends only on the standard library and is imported by
// everything; it must not import any other internal package.
package obs

import (
	"strconv"
	"time"
)

// Attr is one structured span attribute. Values are strings so spans
// stay cheap to snapshot and render; use Int/Bool for the common
// conversions.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	if v {
		return Attr{Key: key, Value: "true"}
	}
	return Attr{Key: key, Value: "false"}
}

// Span is one timed region of work. Spans nest: StartChild opens a
// sub-span attributed to this one. End is idempotent; attributes may
// be added until End.
type Span interface {
	// StartChild opens a child span.
	StartChild(name string, attrs ...Attr) Span
	// SetAttrs attaches attributes to the span.
	SetAttrs(attrs ...Attr)
	// End closes the span, fixing its duration.
	End()
}

// Observer receives metrics and spans from the analysis layers.
//
// Metric names are dot-separated lowercase paths
// ("solver.sat_latency", "eval.derived"); each name should be used
// with exactly one of the four instrument kinds.
type Observer interface {
	// StartSpan opens a root span.
	StartSpan(name string, attrs ...Attr) Span
	// Count adds delta to a monotonic counter.
	Count(name string, delta int64)
	// SetGauge records the current value of a gauge.
	SetGauge(name string, value float64)
	// ObserveDuration adds one sample to a latency distribution.
	ObserveDuration(name string, d time.Duration)
	// Observe adds one sample to a value distribution (sizes, lengths).
	Observe(name string, value float64)
	// Enabled reports whether the observer records anything; callers
	// may use it to skip building attributes on hot paths.
	Enabled() bool
}

// Nop is the do-nothing observer: every method returns immediately and
// StartSpan hands back a shared no-op span.
var Nop Observer = nopObserver{}

// OrNop returns o, or Nop when o is nil, so call sites never need a
// nil check per instrument.
func OrNop(o Observer) Observer {
	if o == nil {
		return Nop
	}
	return o
}

type nopObserver struct{}

func (nopObserver) StartSpan(string, ...Attr) Span        { return nopSpan{} }
func (nopObserver) Count(string, int64)                   {}
func (nopObserver) SetGauge(string, float64)              {}
func (nopObserver) ObserveDuration(string, time.Duration) {}
func (nopObserver) Observe(string, float64)               {}
func (nopObserver) Enabled() bool                         { return false }

type nopSpan struct{}

func (nopSpan) StartChild(string, ...Attr) Span { return nopSpan{} }
func (nopSpan) SetAttrs(...Attr)                {}
func (nopSpan) End()                            {}
