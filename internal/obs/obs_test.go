package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAttrConstructors(t *testing.T) {
	if a := String("k", "v"); a.Key != "k" || a.Value != "v" {
		t.Errorf("String: %+v", a)
	}
	if a := Int("n", -42); a.Value != "-42" {
		t.Errorf("Int: %+v", a)
	}
	if a := Bool("b", true); a.Value != "true" {
		t.Errorf("Bool true: %+v", a)
	}
	if a := Bool("b", false); a.Value != "false" {
		t.Errorf("Bool false: %+v", a)
	}
}

func TestNopObserver(t *testing.T) {
	if Nop.Enabled() {
		t.Error("Nop must report disabled")
	}
	sp := Nop.StartSpan("x", String("a", "b"))
	sp.SetAttrs(Int("n", 1))
	child := sp.StartChild("y")
	child.End()
	sp.End()
	Nop.Count("c", 1)
	Nop.SetGauge("g", 1)
	Nop.ObserveDuration("d", time.Second)
	Nop.Observe("v", 1)
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) should be Nop")
	}
	r := NewRegistry()
	if OrNop(r) != Observer(r) {
		t.Error("OrNop(r) should be r")
	}
}

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	if !r.Enabled() {
		t.Fatal("registry must be enabled")
	}
	r.Count("a", 1)
	r.Count("a", 2)
	r.SetGauge("g", 1.5)
	r.SetGauge("g", 2.5)
	snap := r.Snapshot()
	if snap.Counters["a"] != 3 {
		t.Errorf("counter a = %d, want 3", snap.Counters["a"])
	}
	if snap.Gauges["g"] != 2.5 {
		t.Errorf("gauge g = %g, want 2.5", snap.Gauges["g"])
	}
}

func TestRegistryDistributionPercentiles(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 100; i++ {
		r.Observe("size", float64(i))
	}
	d := r.Snapshot().Values["size"]
	if d.Count != 100 || d.Min != 1 || d.Max != 100 {
		t.Fatalf("summary: %+v", d)
	}
	if d.P50 < 40 || d.P50 > 60 {
		t.Errorf("p50 = %g, want ≈50", d.P50)
	}
	if d.P95 < 90 || d.P95 > 100 {
		t.Errorf("p95 = %g, want ≈95", d.P95)
	}
	if d.P99 < 95 || d.P99 > 100 {
		t.Errorf("p99 = %g, want ≈99", d.P99)
	}
}

func TestRegistryReservoirCap(t *testing.T) {
	r := NewRegistry()
	n := maxSamples * 4
	for i := 0; i < n; i++ {
		r.ObserveDuration("lat", time.Duration(i)*time.Microsecond)
	}
	d := r.Snapshot().DurationsMS["lat"]
	if d.Count != int64(n) {
		t.Errorf("count = %d, want %d", d.Count, n)
	}
	// Exact aggregates survive the sampling.
	if wantMax := float64(n-1) / 1000; d.Max < wantMax*0.999 || d.Max > wantMax*1.001 {
		t.Errorf("max = %g, want ≈%g", d.Max, wantMax)
	}
	// The median of 0..n-1 µs is ≈ n/2 µs; allow generous sampling slack.
	mid := float64(n) / 2 / 1000
	if d.P50 < mid/2 || d.P50 > mid*1.5 {
		t.Errorf("p50 = %gms, want ≈%gms", d.P50, mid)
	}
}

func TestSpanTree(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("eval", Int("rules", 2))
	it := root.StartChild("iteration", Int("round", 0))
	rule := it.StartChild("rule", String("head", "reach"))
	rule.End()
	it.End()
	root.SetAttrs(String("outcome", "ok"))
	root.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(snap.Spans))
	}
	ev := snap.Spans[0]
	if ev.Name != "eval" || len(ev.Children) != 1 {
		t.Fatalf("root: %+v", ev)
	}
	if ev.Children[0].Name != "iteration" || len(ev.Children[0].Children) != 1 {
		t.Fatalf("iteration: %+v", ev.Children[0])
	}
	if ev.Children[0].Children[0].Name != "rule" {
		t.Fatalf("rule: %+v", ev.Children[0].Children[0])
	}
	var found bool
	for _, a := range ev.Attrs {
		if a.Key == "outcome" && a.Value == "ok" {
			found = true
		}
	}
	if !found {
		t.Errorf("late attr missing: %+v", ev.Attrs)
	}
	txt := snap.Text()
	for _, want := range []string{"eval", "iteration", "rule", "head=reach"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() missing %q:\n%s", want, txt)
		}
	}
}

func TestSpanCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSpans(2)
	a := r.StartSpan("a")
	b := a.StartChild("b")
	c := a.StartChild("c") // over cap: dropped
	c.End()
	b.End()
	a.End()
	snap := r.Snapshot()
	if snap.DroppedSpans != 1 {
		t.Errorf("dropped = %d, want 1", snap.DroppedSpans)
	}
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 1 {
		t.Errorf("tree: %+v", snap.Spans)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Count("c", 7)
	r.Observe("v", 3)
	sp := r.StartSpan("s")
	sp.End()
	var back Snapshot
	if err := json.Unmarshal([]byte(r.Snapshot().JSON()), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["c"] != 7 || back.Values["v"].Count != 1 || len(back.Spans) != 1 {
		t.Errorf("round trip: %+v", back)
	}
}

// TestRegistryConcurrent exercises every instrument from many
// goroutines; run with -race this validates the registry's safety
// claim.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Count("c", 1)
				r.SetGauge("g", float64(i))
				r.ObserveDuration("d", time.Microsecond)
				r.Observe("v", float64(i))
				sp := r.StartSpan("s", Int("g", int64(g)))
				ch := sp.StartChild("child")
				ch.End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 4000 {
		t.Errorf("counter = %d, want 4000", snap.Counters["c"])
	}
	if snap.DurationsMS["d"].Count != 4000 {
		t.Errorf("durations = %d, want 4000", snap.DurationsMS["d"].Count)
	}
	if got := int64(len(snap.Spans)) + snap.DroppedSpans/2; got < 2000 {
		t.Errorf("spans %d + dropped %d inconsistent", len(snap.Spans), snap.DroppedSpans)
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Count("hits", 3)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, `"hits": 3`) {
		t.Errorf("/metrics: %s", body)
	}
	if body := get("/metrics?format=text"); !strings.Contains(body, "hits") {
		t.Errorf("/metrics text: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: %s", body[:min(len(body), 120)])
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %s", body[:min(len(body), 120)])
	}
}
