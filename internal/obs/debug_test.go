package obs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Count("eval.derived", 42)
	r.Count("eval.rule_derived.reach", 7)
	r.SetGauge("cond.intern_live", 11)
	r.ObserveDuration("solver.sat_latency", 2*time.Millisecond)
	r.Observe("eval.candidates", 5)
	out := r.Snapshot().Prometheus()

	for _, want := range []string{
		"# TYPE faure_eval_derived_total counter",
		"faure_eval_derived_total 42",
		"faure_eval_rule_derived_reach_total 7",
		"# TYPE faure_cond_intern_live gauge",
		"faure_cond_intern_live 11",
		"# TYPE faure_solver_sat_latency_seconds summary",
		`faure_solver_sat_latency_seconds{quantile="0.5"} 0.002`,
		"faure_solver_sat_latency_seconds_count 1",
		"faure_eval_candidates_sum 5",
		"# TYPE faure_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	// The exposition grammar allows only [a-zA-Z0-9_:] in names; every
	// dotted registry key must have been sanitised.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _ := strings.Cut(line, " ")
		name, _, _ = strings.Cut(name, "{")
		if strings.ContainsAny(name, ".-") {
			t.Errorf("unsanitised metric name %q", name)
		}
	}
}

// TestMetricsContentNegotiation checks /metrics picks its format from
// the format parameter or the scraper's Accept header.
func TestMetricsContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Count("hits", 3)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path, accept string) (string, string) {
		req, err := http.NewRequest("GET", "http://"+srv.Addr()+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}
	if body, ct := get("/metrics?format=prom", ""); !strings.Contains(body, "faure_hits_total 3") ||
		!strings.Contains(ct, "version=0.0.4") {
		t.Errorf("format=prom: ct=%q body=%s", ct, body)
	}
	// A Prometheus scraper negotiates via Accept; the default stays JSON.
	if body, _ := get("/metrics", "application/openmetrics-text;version=1.0.0,text/plain"); !strings.Contains(body, "faure_hits_total") {
		t.Errorf("Accept negotiation did not yield the exposition format: %s", body)
	}
	if body, ct := get("/metrics", ""); !strings.Contains(ct, "application/json") || !strings.Contains(body, `"hits": 3`) {
		t.Errorf("default: ct=%q body=%s", ct, body)
	}
}

// TestServeDebugContextShutdown checks the context-bound lifecycle:
// cancellation drains the server, Done is closed, later requests fail
// and Close stays idempotent.
func TestServeDebugContextShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := ServeDebugContext(ctx, "127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	// A handler mounted after start (the explain endpoint pattern) is
	// served.
	srv.Handle("/debug/explain", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "trees")
	}))
	resp, err := http.Get("http://" + srv.Addr() + "/debug/explain")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "trees" {
		t.Errorf("mounted handler returned %q", body)
	}

	cancel()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop after context cancellation")
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("request succeeded after shutdown")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after cancellation: %v", err)
	}
}

func TestLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, false, slog.LevelWarn)
	log.Info("dropped")
	log.Warn("kept", "k", "v")
	if out := buf.String(); strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("text logger at warn: %q", out)
	}
	buf.Reset()
	NewLogger(&buf, true, slog.LevelInfo).Info("hello", "n", 1)
	if out := buf.String(); !strings.HasPrefix(out, "{") || !strings.Contains(out, `"msg":"hello"`) {
		t.Errorf("json logger: %q", out)
	}
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}
