package obs

import (
	"fmt"
	"strings"
)

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): every metric prefixed faure_, names
// sanitised to [a-zA-Z0-9_], counters as counters, gauges as gauges,
// and distributions as summaries with 0.5/0.95/0.99 quantiles.
// Durations — stored in milliseconds in the snapshot — are converted
// to seconds and suffixed _seconds per Prometheus convention. Spans
// are not exported (they are traces, not metrics).
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.DurationsMS) {
		writeSummary(&b, promName(k)+"_seconds", s.DurationsMS[k], 1e-3) // ms → s
	}
	for _, k := range sortedKeys(s.Values) {
		writeSummary(&b, promName(k), s.Values[k], 1)
	}
	fmt.Fprintf(&b, "# TYPE faure_uptime_seconds gauge\nfaure_uptime_seconds %g\n", s.UptimeMS/1000)
	if s.DroppedSpans > 0 {
		b.WriteString("# TYPE faure_dropped_spans_total counter\n")
		fmt.Fprintf(&b, "faure_dropped_spans_total %d\n", s.DroppedSpans)
	}
	return b.String()
}

func writeSummary(b *strings.Builder, name string, d DistSummary, scale float64) {
	fmt.Fprintf(b, "# TYPE %s summary\n", name)
	for _, q := range []struct {
		p string
		v float64
	}{{"0.5", d.P50}, {"0.95", d.P95}, {"0.99", d.P99}} {
		fmt.Fprintf(b, "%s{quantile=%q} %g\n", name, q.p, q.v*scale)
	}
	fmt.Fprintf(b, "%s_sum %g\n", name, d.Sum*scale)
	fmt.Fprintf(b, "%s_count %d\n", name, d.Count)
}

// promName maps a registry metric name (dotted, with arbitrary
// predicate suffixes) onto the Prometheus metric-name grammar.
func promName(k string) string {
	var b strings.Builder
	b.WriteString("faure_")
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
