package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// DebugServer serves the observability endpoints of one process:
//
//	/metrics              registry snapshot as JSON (the default)
//	/metrics?format=text  the same, human-readable
//	/metrics?format=prom  Prometheus text exposition (also negotiated
//	                      via the Accept header)
//	/debug/vars           expvar (memstats, cmdline)
//	/debug/pprof/...      the standard pprof handlers
//	/debug/explain        derivation trees, when a command mounts one
//	                      (see Handle)
//
// It is started by the -debug-addr flag of the faure commands.
type DebugServer struct {
	srv       *http.Server
	mux       *http.ServeMux
	addr      net.Addr
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr.String() }

// Handle mounts an extra handler on the running server — commands use
// it to add endpoints that need state built after the server starts
// (the explain endpoint needs the evaluation's result database).
// http.ServeMux is safe for concurrent Handle/ServeHTTP.
func (d *DebugServer) Handle(pattern string, h http.Handler) { d.mux.Handle(pattern, h) }

// Done is closed once the serve loop has exited (after Close, a
// context cancellation, or a listener error).
func (d *DebugServer) Done() <-chan struct{} { return d.done }

// shutdownGrace bounds how long Close waits for in-flight requests
// before hard-closing their connections.
const shutdownGrace = 2 * time.Second

// Close shuts the server down gracefully: no new connections, a
// bounded wait for in-flight requests, then a hard close. It is
// idempotent and safe to call concurrently with a context
// cancellation.
func (d *DebugServer) Close() error {
	d.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		d.closeErr = d.srv.Shutdown(ctx)
		if d.closeErr != nil {
			_ = d.srv.Close()
		}
		<-d.done
	})
	return d.closeErr
}

// ServeDebug starts the debug endpoint on addr in a background
// goroutine. reg may be nil, in which case /metrics reports an empty
// snapshot. The caller owns the returned server and should Close it.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return ServeDebugContext(context.Background(), addr, reg)
}

// ServeDebugContext is ServeDebug bound to a context: when ctx is
// cancelled the server shuts down gracefully (bounded drain of
// in-flight requests), so commands wired to signal contexts stop
// serving cleanly on interrupt.
func ServeDebugContext(ctx context.Context, addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", MetricsHandler(reg))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	d := &DebugServer{srv: srv, mux: mux, addr: ln.Addr(), done: make(chan struct{})}
	go func() {
		defer close(d.done)
		_ = srv.Serve(ln)
	}()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = d.Close()
			case <-d.done:
			}
		}()
	}
	return d, nil
}

// MetricsHandler serves a registry snapshot with format negotiation:
// JSON by default, ?format=text for the human-readable report,
// ?format=prom (or a Prometheus Accept header) for the text
// exposition. The debug server mounts it on /metrics; faure-serve
// mounts the same handler on its service mux so one scrape config
// covers both. reg may be nil (empty snapshot).
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		switch metricsFormat(r) {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(snap.Text()))
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = w.Write([]byte(snap.Prometheus()))
		default:
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(snap.JSON()))
		}
	})
}

// metricsFormat resolves the response format: the explicit format
// query parameter wins; otherwise a Prometheus scraper is recognised
// by its Accept header; the default stays JSON.
func metricsFormat(r *http.Request) string {
	switch r.URL.Query().Get("format") {
	case "text":
		return "text"
	case "prom", "prometheus", "openmetrics":
		return "prom"
	case "json":
		return "json"
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain") {
		return "prom"
	}
	return "json"
}
