package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer serves the observability endpoints of one process:
//
//	/metrics            registry snapshot as JSON
//	/metrics?format=text  the same, human-readable
//	/debug/vars         expvar (memstats, cmdline)
//	/debug/pprof/...    the standard pprof handlers
//
// It is started by the -debug-addr flag of the faure commands.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr.String() }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts the debug endpoint on addr in a background
// goroutine. reg may be nil, in which case /metrics reports an empty
// snapshot. The caller owns the returned server and should Close it.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(snap.Text()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(snap.JSON()))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, addr: ln.Addr()}, nil
}
