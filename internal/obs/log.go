package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger the CLI tools share: text
// (logfmt-style) by default, JSON lines when jsonFormat is set — one
// object per line, machine-ingestable by the usual log pipelines.
func NewLogger(w io.Writer, jsonFormat bool, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps the CLI spelling of a log level onto slog's.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (debug, info, warn, error)", s)
	}
}
