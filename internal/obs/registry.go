package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is the recording Observer: concurrency-safe counters,
// gauges, reservoir-sampled distributions, and a bounded span tree.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	start    time.Time
	counters map[string]int64
	gauges   map[string]float64
	durs     map[string]*sample
	vals     map[string]*sample
	roots    []*spanNode
	nSpans   int
	maxSpans int
	dropped  int64
}

// maxSamples bounds each distribution's reservoir; percentiles beyond
// that many observations are computed over a uniform subsample.
const maxSamples = 4096

// defaultMaxSpans bounds the retained span tree; spans beyond the cap
// are dropped (counted in Snapshot.DroppedSpans) rather than growing
// memory without bound on long evaluations.
const defaultMaxSpans = 16384

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		durs:     map[string]*sample{},
		vals:     map[string]*sample{},
		maxSpans: defaultMaxSpans,
	}
}

// SetMaxSpans bounds the retained span tree (0 disables span
// recording entirely; metrics are still collected).
func (r *Registry) SetMaxSpans(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxSpans = n
}

// Enabled reports true: the registry records everything it is sent.
func (r *Registry) Enabled() bool { return true }

// Count adds delta to the named counter.
func (r *Registry) Count(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge records the gauge's current value.
func (r *Registry) SetGauge(name string, value float64) {
	r.mu.Lock()
	r.gauges[name] = value
	r.mu.Unlock()
}

// ObserveDuration adds one latency sample (stored in seconds).
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.mu.Lock()
	s := r.durs[name]
	if s == nil {
		s = &sample{}
		r.durs[name] = s
	}
	s.add(d.Seconds())
	r.mu.Unlock()
}

// Observe adds one value sample.
func (r *Registry) Observe(name string, value float64) {
	r.mu.Lock()
	s := r.vals[name]
	if s == nil {
		s = &sample{}
		r.vals[name] = s
	}
	s.add(value)
	r.mu.Unlock()
}

// StartSpan opens a root span.
func (r *Registry) StartSpan(name string, attrs ...Attr) Span {
	return r.newSpan(nil, name, attrs)
}

func (r *Registry) newSpan(parent *spanNode, name string, attrs []Attr) Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nSpans >= r.maxSpans {
		r.dropped++
		return nopSpan{}
	}
	r.nSpans++
	n := &spanNode{reg: r, name: name, attrs: attrs, start: time.Now()}
	if parent != nil {
		parent.children = append(parent.children, n)
	} else {
		r.roots = append(r.roots, n)
	}
	return n
}

// spanNode is the recorded form of a span.
type spanNode struct {
	reg      *Registry
	name     string
	attrs    []Attr
	start    time.Time
	duration time.Duration
	children []*spanNode
	ended    bool
}

func (n *spanNode) StartChild(name string, attrs ...Attr) Span {
	return n.reg.newSpan(n, name, attrs)
}

func (n *spanNode) SetAttrs(attrs ...Attr) {
	n.reg.mu.Lock()
	n.attrs = append(n.attrs, attrs...)
	n.reg.mu.Unlock()
}

func (n *spanNode) End() {
	n.reg.mu.Lock()
	if !n.ended {
		n.ended = true
		n.duration = time.Since(n.start)
	}
	n.reg.mu.Unlock()
}

// sample is a streaming distribution: exact count/sum/min/max plus a
// uniform reservoir for percentile estimation.
type sample struct {
	count    int64
	sum      float64
	min, max float64
	values   []float64
	rng      uint64
}

func (s *sample) add(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	if len(s.values) < maxSamples {
		s.values = append(s.values, v)
		return
	}
	// Algorithm R: replace a uniformly random slot with probability
	// maxSamples/count, using a cheap xorshift generator.
	if s.rng == 0 {
		s.rng = 0x9e3779b97f4a7c15
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	if idx := s.rng % uint64(s.count); idx < maxSamples {
		s.values[idx] = v
	}
}

// quantile returns the p-quantile (0 ≤ p ≤ 1) of the sorted values.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// DistSummary summarises one distribution. Durations are reported in
// milliseconds, plain values in their native unit.
type DistSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func (s *sample) summary(scale float64) DistSummary {
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	return DistSummary{
		Count: s.count,
		Sum:   s.sum * scale,
		Min:   s.min * scale,
		Max:   s.max * scale,
		P50:   quantile(sorted, 0.50) * scale,
		P95:   quantile(sorted, 0.95) * scale,
		P99:   quantile(sorted, 0.99) * scale,
	}
}

// SpanSnapshot is the exported form of one recorded span.
type SpanSnapshot struct {
	Name       string          `json:"name"`
	DurationMS float64         `json:"duration_ms"`
	Attrs      []Attr          `json:"attrs,omitempty"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// Snapshot is a point-in-time copy of everything the registry holds.
type Snapshot struct {
	UptimeMS     float64                `json:"uptime_ms"`
	Counters     map[string]int64       `json:"counters,omitempty"`
	Gauges       map[string]float64     `json:"gauges,omitempty"`
	DurationsMS  map[string]DistSummary `json:"durations_ms,omitempty"`
	Values       map[string]DistSummary `json:"values,omitempty"`
	Spans        []*SpanSnapshot        `json:"spans,omitempty"`
	DroppedSpans int64                  `json:"dropped_spans,omitempty"`
}

// Snapshot copies the registry's state. Unfinished spans report the
// duration accumulated so far.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		UptimeMS:     float64(time.Since(r.start)) / float64(time.Millisecond),
		Counters:     map[string]int64{},
		Gauges:       map[string]float64{},
		DurationsMS:  map[string]DistSummary{},
		Values:       map[string]DistSummary{},
		DroppedSpans: r.dropped,
	}
	for k, v := range r.counters {
		snap.Counters[k] = v
	}
	for k, v := range r.gauges {
		snap.Gauges[k] = v
	}
	for k, s := range r.durs {
		snap.DurationsMS[k] = s.summary(1000) // seconds → ms
	}
	for k, s := range r.vals {
		snap.Values[k] = s.summary(1)
	}
	for _, n := range r.roots {
		snap.Spans = append(snap.Spans, n.snapshot())
	}
	return snap
}

func (n *spanNode) snapshot() *SpanSnapshot {
	d := n.duration
	if !n.ended {
		d = time.Since(n.start)
	}
	out := &SpanSnapshot{
		Name:       n.name,
		DurationMS: float64(d) / float64(time.Millisecond),
		Attrs:      append([]Attr(nil), n.attrs...),
	}
	for _, c := range n.children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Sprintf("{%q: %q}", "error", err.Error())
	}
	return string(b)
}

// Text renders the snapshot in a compact human-readable layout:
// counters and gauges sorted by name, distributions with percentiles,
// and the span tree indented.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-40s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-40s %g\n", k, s.Gauges[k])
		}
	}
	if len(s.DurationsMS) > 0 {
		b.WriteString("durations (ms):\n")
		for _, k := range sortedKeys(s.DurationsMS) {
			d := s.DurationsMS[k]
			fmt.Fprintf(&b, "  %-40s n=%d sum=%.3f p50=%.4f p95=%.4f p99=%.4f\n",
				k, d.Count, d.Sum, d.P50, d.P95, d.P99)
		}
	}
	if len(s.Values) > 0 {
		b.WriteString("values:\n")
		for _, k := range sortedKeys(s.Values) {
			d := s.Values[k]
			fmt.Fprintf(&b, "  %-40s n=%d sum=%g min=%g max=%g p50=%g p95=%g p99=%g\n",
				k, d.Count, d.Sum, d.Min, d.Max, d.P50, d.P95, d.P99)
		}
	}
	if len(s.Spans) > 0 {
		b.WriteString("spans:\n")
		for _, sp := range s.Spans {
			sp.render(&b, 1)
		}
	}
	if s.DroppedSpans > 0 {
		fmt.Fprintf(&b, "dropped spans: %d\n", s.DroppedSpans)
	}
	return b.String()
}

func (sp *SpanSnapshot) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %.3fms", sp.Name, sp.DurationMS)
	for _, a := range sp.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range sp.Children {
		c.render(b, depth+1)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
