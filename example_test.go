package faure_test

import (
	"fmt"
	"log"

	"faure"
)

// The quick-start flow: one c-table models both failure worlds of a
// protected link; reachability is computed once, loss-lessly.
func ExampleEval() {
	db, err := faure.ParseDatabase(`
		var $x in {0, 1}.
		fwd(F0, 1, 2)[$x = 1].
		fwd(F0, 1, 3)[$x = 0].
		fwd(F0, 2, 4).
		fwd(F0, 3, 4).
	`)
	if err != nil {
		log.Fatal(err)
	}
	prog := faure.MustParse(`
		reach(f, a, b) :- fwd(f, a, b).
		reach(f, a, c) :- fwd(f, a, b), reach(f, b, c).
	`)
	res, err := faure.Eval(prog, db, faure.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := faure.NewSolver(db.Doms)
	union := faure.FalseCond()
	for _, tp := range res.DB.Table("reach").Tuples {
		if tp.Values[1].Equal(faure.Int(1)) && tp.Values[2].Equal(faure.Int(4)) {
			union = faure.Or(union, tp.Condition())
		}
	}
	always, err := s.Valid(union)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1 reaches 4 in every world:", always)
	// Output: 1 reaches 4 in every world: true
}

// Constraint subsumption (the category (i) test): T1's violation is a
// special case of the security policy's, so knowing C_s holds proves
// T1 without seeing the network.
func ExampleSubsumes() {
	ok, err := faure.Subsumes(
		faure.T1(),
		[]faure.Constraint{faure.Cs()},
		faure.EnterpriseDomains(),
		faure.EnterpriseSchema(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("T1 subsumed by C_s:", ok)
	// Output: T1 subsumed by C_s: true
}

// The Listing 4 rewrite: C' evaluated before the update is equivalent
// to C evaluated after it.
func ExampleRewriteConstraint() {
	u := faure.ListingFourUpdate()
	rewritten, err := faure.RewriteConstraint(faure.T2().Program, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rewritten)
	// Output:
	// lb_u0(x0, x1) :- lb(x0, x1).
	// lb_u0(R&D, GS).
	// lb_u1(x0, x1) :- lb_u0(x0, x1), x0 != Mkt.
	// lb_u1(x0, x1) :- lb_u0(x0, x1), x1 != CS.
	// panic() :- r(R&D, y, 7000), not lb_u1(R&D, y).
}

// Compiling fauré-log to the SQL dialect — the paper's implementation
// architecture, inspectable as text.
func ExampleCompileSQL() {
	db, err := faure.ParseDatabase(`fwd(F0, 1, 2).`)
	if err != nil {
		log.Fatal(err)
	}
	prog := faure.MustParse(`hop(f, a, b) :- fwd(f, a, b).`)
	script, err := faure.CompileSQL(prog, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(script)
	// Output:
	// CREATE TABLE hop (c0, c1, c2);
	// INSERT INTO hop SELECT t0.c0, t0.c1, t0.c2, AND(COND(t0)) FROM fwd t0;
	// DELETE FROM hop WHERE UNSAT;
}

// Parsing an update and applying it to a state.
func ExampleParseUpdate() {
	u, err := faure.ParseUpdate(`
		+lb('R&D', GS).
		-lb(Mkt, CS).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(u)
	// Output: +lb(R&D, GS) -lb(Mkt, CS)
}
