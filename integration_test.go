package faure_test

import (
	"strings"
	"testing"

	"faure"
)

// TestEndToEndPipeline drives the system the way a user would, through
// the public API only: generate a workload, serialise and re-parse it,
// run the paper's analyses on both backends, classify answers, check
// loss-lessness, and finish with a verification ladder — one test that
// fails if any joint between the subsystems drifts.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate a synthetic RIB and compile it to forwarding state.
	r := faure.GenerateRIB(faure.RIBConfig{Prefixes: 8, Seed: 21, PoolSize: 4})
	db := r.ForwardingDatabase()

	// 2. Serialise the database to text and parse it back; the round
	// trip must preserve evaluation behaviour exactly.
	text := faure.FormatDatabase(db)
	db2, err := faure.ParseDatabase(text)
	if err != nil {
		t.Fatalf("parse of formatted database: %v\n%s", err, text)
	}

	// 3. All-pairs reachability on the native engine, from both copies.
	prog := faure.ReachabilityProgram()
	res1, err := faure.Eval(prog, db, faure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := faure.Eval(prog, db2, faure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.DB.Table("reach").Len() != res2.DB.Table("reach").Len() {
		t.Fatalf("formatted/parsed database evaluates differently: %d vs %d tuples",
			res1.DB.Table("reach").Len(), res2.DB.Table("reach").Len())
	}

	// 4. The SQL backend agrees on satisfiable data parts.
	sqlDB, _, err := faure.EvalSQL(prog, db, faure.SQLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := faure.NewSolver(db.Doms)
	nativeAnswers, err := faure.ClassifyAnswers(res1.DB.Table("reach"), s)
	if err != nil {
		t.Fatal(err)
	}
	sqlAnswers, err := faure.ClassifyAnswers(sqlDB.Table("reach"), s)
	if err != nil {
		t.Fatal(err)
	}
	nat := map[string]faure.AnswerStatus{}
	for _, a := range nativeAnswers {
		if a.Status != faure.Impossible {
			nat[key(a.Values)] = a.Status
		}
	}
	sq := map[string]faure.AnswerStatus{}
	for _, a := range sqlAnswers {
		if a.Status != faure.Impossible {
			sq[key(a.Values)] = a.Status
		}
	}
	if len(nat) != len(sq) {
		t.Fatalf("backends disagree on answer count: %d vs %d", len(nat), len(sq))
	}
	for k, st := range nat {
		if sq[k] != st {
			t.Errorf("answer %s: native %v, sql %v", k, st, sq[k])
		}
	}

	// 5. Loss-lessness over the variable pool.
	vars := []string{"x", "y", "z", "l3"}
	mis, err := faure.CheckLossless(prog, db, vars, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 0 {
		t.Fatalf("loss-lessness violated: %v", mis[0])
	}

	// 6. Failure-pattern query over the reachability output, traced.
	q6 := faure.MustParse(`cut(f, a, b) :- reach(f, a, b), $x+$y+$z = 1.`)
	res6, err := faure.Eval(q6, res1.DB, faure.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res6.DB.Table("cut").Len() == 0 {
		t.Fatalf("q6 produced nothing")
	}
	exps := res6.ExplainAll("cut")
	if len(exps) == 0 || !strings.Contains(exps[0].String(), "reach(") {
		t.Errorf("q6 derivations should cite reach tuples")
	}

	// 7. Verification ladder on the §5 scenario through the façade.
	v := &faure.Verifier{Doms: faure.EnterpriseDomains(), Schema: faure.EnterpriseSchema()}
	known := []faure.Constraint{faure.Clb(), faure.Cs()}
	u := faure.ListingFourUpdate()
	state := faure.EnterpriseState(false)
	rep, level, err := v.Ladder(faure.T2(), known, &u, state)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != faure.Holds || level != "category-ii" {
		t.Errorf("T2 ladder: %v at %s", rep.Verdict, level)
	}
}

func key(values []faure.Term) string {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}
