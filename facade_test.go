package faure_test

import (
	"strings"
	"testing"
	"time"

	"faure"
)

func TestParseConditionFacade(t *testing.T) {
	f, err := faure.ParseCondition(`$x = 1 && ($y != Mkt || $z >= 2)`)
	if err != nil {
		t.Fatalf("ParseCondition: %v", err)
	}
	vars := f.CVars()
	if len(vars) != 3 {
		t.Errorf("CVars = %v", vars)
	}
	// Program variables are rejected.
	if _, err := faure.ParseCondition(`x = 1`); err == nil {
		t.Errorf("program variable should be rejected")
	}
	if _, err := faure.ParseCondition(`$x = 1 extra`); err == nil {
		t.Errorf("trailing input should be rejected")
	}
}

func TestAlgebraFacade(t *testing.T) {
	tbl := faure.NewTable("r", "a", "b")
	tbl.MustInsert(nil, faure.Str("A"), faure.Int(1))
	tbl.MustInsert(nil, faure.Str("B"), faure.Int(2))
	sel, err := faure.SelectRows(tbl, faure.Selection{
		Left: faure.Column(1), Op: faure.OpGt, Right: faure.ConstantOperand(faure.Int(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 1 {
		t.Errorf("selection kept %d rows", sel.Len())
	}
	proj, err := faure.ProjectCols(sel, "p", 0)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 1 || !proj.Tuples[0].Values[0].Equal(faure.Str("B")) {
		t.Errorf("projection wrong: %v", proj)
	}
	joined, err := faure.JoinTables(tbl, proj, "j", [2]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 1 {
		t.Errorf("join wrong: %v", joined)
	}
	u, err := faure.UnionTables(proj, proj, "u")
	if err != nil || u.Len() != 2 {
		t.Errorf("union wrong: %v (%v)", u, err)
	}
	r, err := faure.RenameTable(u, "renamed")
	if err != nil || r.Schema.Name != "renamed" {
		t.Errorf("rename wrong: %v (%v)", r, err)
	}
}

func TestFormatDatabaseFacade(t *testing.T) {
	db, err := faure.ParseDatabase(`
		var $x in {0, 1}.
		r(A)[$x = 1].
	`)
	if err != nil {
		t.Fatal(err)
	}
	text := faure.FormatDatabase(db)
	again, err := faure.ParseDatabase(text)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
	if again.Table("r").Len() != 1 {
		t.Errorf("round trip lost tuples")
	}
}

func TestEvalSQLFacade(t *testing.T) {
	db, err := faure.ParseDatabase(`fwd(F0, 1, 2). fwd(F0, 2, 3).`)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := faure.EvalSQL(faure.ReachabilityProgram(), db, faure.SQLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Table("reach").Len() != 3 {
		t.Errorf("reach = %v", out.Table("reach"))
	}
	if stats.Inserted != 3 {
		t.Errorf("Inserted = %d", stats.Inserted)
	}
	script, err := faure.CompileSQL(faure.ReachabilityProgram(), db)
	if err != nil || !strings.Contains(script, "LOOP") {
		t.Errorf("CompileSQL = %q (%v)", script, err)
	}
}

func TestTopologyFacades(t *testing.T) {
	if got := len(faure.ChainTopology(4).Protected); got != 3 {
		t.Errorf("chain protected = %d", got)
	}
	if got := len(faure.RingTopology(4).Protected); got != 4 {
		t.Errorf("ring protected = %d", got)
	}
}

func TestFormatTable4Durations(t *testing.T) {
	res := &faure.Table4Result{
		Prefixes: 7,
		Rows: []faure.Table4Row{
			{Query: "q4-q5", SQL: 2 * time.Second, Solver: 3 * time.Millisecond, Tuples: 10},
			{Query: "q6", SQL: 150 * time.Microsecond, Solver: 0, Tuples: 20},
			{Query: "q7", SQL: time.Millisecond, Solver: time.Second, Tuples: 30},
			{Query: "q8", SQL: 0, Solver: 0, Tuples: 40},
		},
	}
	out := faure.FormatTable4([]*faure.Table4Result{res})
	for _, frag := range []string{"2.00s", "3.0ms", "150µs", "7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted table missing %q:\n%s", frag, out)
		}
	}
}

func TestApplyUpdateFacadeWithParsedUpdate(t *testing.T) {
	db, err := faure.ParseDatabase(`lb(Mkt, CS).`)
	if err != nil {
		t.Fatal(err)
	}
	u, err := faure.ParseUpdate(`-lb(Mkt, CS). +lb('R&D', GS).`)
	if err != nil {
		t.Fatal(err)
	}
	post, err := faure.ApplyUpdate(db, u)
	if err != nil {
		t.Fatal(err)
	}
	tbl := post.Table("lb")
	if tbl.Len() != 1 || tbl.Tuples[0].DataKey() != "R&D|GS" {
		t.Errorf("update application wrong: %v", tbl)
	}
}

func TestCheckLosslessFacade(t *testing.T) {
	db, err := faure.ParseDatabase(`
		var $x in {0, 1}.
		fwd(F0, 1, 2)[$x = 1].
		fwd(F0, 1, 3)[$x = 0].
	`)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := faure.CheckLossless(faure.ReachabilityProgram(), db, []string{"x"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 0 {
		t.Errorf("mismatches: %v", mis)
	}
}
