package faure_test

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"faure"
	"faure/internal/budget"
	"faure/internal/faultinject"
)

// dumpTables renders every table of a database — names, tuple data,
// conditions and row order — into one canonical string, so equality is
// the bit-for-bit determinism the parallel engine guarantees.
func dumpTables(db *faure.Database) string {
	var names []string
	for name := range db.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "== %s\n", name)
		for i, tp := range db.Tables[name].Tuples {
			fmt.Fprintf(&b, "%5d %s\n", i, tp.Key())
		}
	}
	return b.String()
}

// table4Workloads runs the paper's Table 4 query chain (q4–q5 reach,
// then q6, q7 and q8 over it) at the given worker count and returns
// the result databases keyed by query name.
func table4Workloads(t *testing.T, workers int) map[string]*faure.Database {
	t.Helper()
	opts := faure.WithWorkers(faure.Options{}, workers)
	r := faure.GenerateRIB(faure.RIBConfig{Prefixes: 80, PoolSize: 10, Seed: 3})
	fwd := r.ForwardingDatabase()

	out := map[string]*faure.Database{}
	reach, err := faure.Eval(faure.ReachabilityProgram(), fwd, opts)
	if err != nil {
		t.Fatalf("workers=%d q4-q5: %v", workers, err)
	}
	out["q4-q5"] = reach.DB
	q6, err := faure.Eval(faure.TwoLinkFailureProgram("x", "y", "z"), reach.DB, opts)
	if err != nil {
		t.Fatalf("workers=%d q6: %v", workers, err)
	}
	out["q6"] = q6.DB
	q7, err := faure.Eval(faure.PinnedPairFailureProgram(2, 5, "y"), q6.DB, opts)
	if err != nil {
		t.Fatalf("workers=%d q7: %v", workers, err)
	}
	out["q7"] = q7.DB
	q8, err := faure.Eval(faure.AtLeastOneFailureProgram(1, "y", "z"), reach.DB, opts)
	if err != nil {
		t.Fatalf("workers=%d q8: %v", workers, err)
	}
	out["q8"] = q8.DB
	return out
}

// TestParallelTable4Determinism runs the full Table 4 workload chain
// sequentially and with 8 workers: every result database must be
// bit-for-bit identical (tuples, conditions and row order).
func TestParallelTable4Determinism(t *testing.T) {
	seq := table4Workloads(t, 1)
	par := table4Workloads(t, 8)
	for _, name := range []string{"q4-q5", "q6", "q7", "q8"} {
		want, got := dumpTables(seq[name]), dumpTables(par[name])
		if want != got {
			t.Errorf("%s: parallel tables diverge from sequential\nseq:\n%.2000s\npar:\n%.2000s", name, want, got)
		}
	}
}

// TestParallelVerifierVerdicts runs the §5 enterprise verification
// ladder at both worker counts: verdict, decision level and reason
// must be identical.
func TestParallelVerifierVerdicts(t *testing.T) {
	known := []faure.Constraint{faure.Clb(), faure.Cs()}
	update := faure.ListingFourUpdate()
	state := faure.EnterpriseState(false)
	for _, target := range []faure.Constraint{faure.T1(), faure.T2()} {
		type verdict struct {
			verdict faure.Verdict
			level   string
			reason  string
		}
		run := func(workers int) verdict {
			v := &faure.Verifier{
				Doms: faure.EnterpriseDomains(), Schema: faure.EnterpriseSchema(),
				Workers: workers,
			}
			rep, level, err := v.Ladder(target, known, &update, state)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", target.Name, workers, err)
			}
			return verdict{rep.Verdict, level, rep.Reason}
		}
		seq := run(1)
		if par := run(8); par != seq {
			t.Errorf("%s: verdicts diverge: seq=%+v par=%+v", target.Name, seq, par)
		}
	}
}

// TestParallelBudgetTruncationParity trips a derived-tuple budget: the
// charge happens on the serial commit path in both engines, so the
// truncated partial results must also be identical.
func TestParallelBudgetTruncationParity(t *testing.T) {
	run := func(workers int) string {
		t.Helper()
		bud := faure.NewBudget(nil, faure.Budget{Tuples: 400})
		opts := faure.WithWorkers(faure.WithBudget(faure.Options{}, bud), workers)
		r := faure.GenerateRIB(faure.RIBConfig{Prefixes: 80, PoolSize: 10, Seed: 3})
		res, err := faure.Eval(faure.ReachabilityProgram(), r.ForwardingDatabase(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Truncated == nil {
			t.Fatalf("workers=%d: tuple budget did not trip", workers)
		}
		return dumpTables(res.DB)
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		if par := run(workers); par != seq {
			t.Errorf("workers=%d: truncated tables diverge from sequential", workers)
		}
	}
}

// TestParallelInjectedTripParity injects a failure at a fixed fixpoint
// checkpoint — the coordinator fires it once per round at any worker
// count — and checks the truncated results match.
func TestParallelInjectedTripParity(t *testing.T) {
	trip := &budget.Exceeded{Kind: budget.Tuples, Limit: 1, Where: "injected"}
	run := func(workers int) string {
		t.Helper()
		faultinject.Arm(faultinject.FaurelogIteration, 2, trip)
		defer faultinject.Disarm()
		r := faure.GenerateRIB(faure.RIBConfig{Prefixes: 60, PoolSize: 10, Seed: 5})
		res, err := faure.Eval(faure.ReachabilityProgram(), r.ForwardingDatabase(),
			faure.WithWorkers(faure.Options{}, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Truncated == nil {
			t.Fatalf("workers=%d: injected trip did not truncate", workers)
		}
		return dumpTables(res.DB)
	}
	seq := run(1)
	if par := run(8); par != seq {
		t.Errorf("injected-trip truncations diverge between 1 and 8 workers")
	}
}

// TestParallelSpeedupSmoke checks the point of the exercise: on a
// multi-core machine, 8 workers must beat 1 worker on the solver-heavy
// q4-q5 and q6 workloads. Wall-clock assertions are inherently noisy,
// so each configuration takes its best of two runs. Skipped on a
// single CPU, where no speedup is possible.
func TestParallelSpeedupSmoke(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("NumCPU=%d: parallel speedup is not demonstrable", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing-sensitive sweep in -short mode")
	}
	r := faure.GenerateRIB(faure.RIBConfig{Prefixes: 1500, PoolSize: 10, Seed: 1})
	fwd := r.ForwardingDatabase()

	timeEval := func(prog *faure.Program, db *faure.Database, workers int) (time.Duration, *faure.Database) {
		t.Helper()
		var best time.Duration
		var out *faure.Database
		for i := 0; i < 2; i++ {
			start := time.Now()
			res, err := faure.Eval(prog, db, faure.WithWorkers(faure.Options{}, workers))
			wall := time.Since(start)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if out == nil || wall < best {
				best, out = wall, res.DB
			}
		}
		return best, out
	}

	seqReach, reachDB := timeEval(faure.ReachabilityProgram(), fwd, 1)
	parReach, _ := timeEval(faure.ReachabilityProgram(), fwd, 8)
	if parReach >= seqReach {
		t.Errorf("q4-q5: 8 workers (%v) not faster than 1 worker (%v)", parReach, seqReach)
	}
	seqQ6, _ := timeEval(faure.TwoLinkFailureProgram("x", "y", "z"), reachDB, 1)
	parQ6, _ := timeEval(faure.TwoLinkFailureProgram("x", "y", "z"), reachDB, 8)
	if parQ6 >= seqQ6 {
		t.Errorf("q6: 8 workers (%v) not faster than 1 worker (%v)", parQ6, seqQ6)
	}
	t.Logf("q4-q5: 1w=%v 8w=%v (%.2fx); q6: 1w=%v 8w=%v (%.2fx)",
		seqReach, parReach, float64(seqReach)/float64(parReach),
		seqQ6, parQ6, float64(seqQ6)/float64(parQ6))
}
