package faure_test

import (
	"strings"
	"testing"

	"faure"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow.
func TestPublicAPIQuickstart(t *testing.T) {
	db, err := faure.ParseDatabase(`
		var $x in {0, 1}.
		fwd(F0, 1, 2)[$x = 1].
		fwd(F0, 1, 3)[$x = 0].
		fwd(F0, 2, 4).
		fwd(F0, 3, 4).
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := faure.Parse(`
		reach(f, a, b) :- fwd(f, a, b).
		reach(f, a, c) :- fwd(f, a, b), reach(f, b, c).
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := faure.Eval(prog, db, faure.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reach := res.DB.Table("reach")
	// 1 always reaches 4 (via 2 or 3).
	s := faure.NewSolver(db.Doms)
	union := faure.FalseCond()
	for _, tp := range reach.Tuples {
		if tp.Values[1].Equal(faure.Int(1)) && tp.Values[2].Equal(faure.Int(4)) {
			union = faure.Or(union, tp.Condition())
		}
	}
	valid, err := s.Valid(union)
	if err != nil || !valid {
		t.Errorf("1 should always reach 4: %v (%v)", union, err)
	}
}

// TestRunTable4Smoke checks the harness produces all four rows with
// the paper's qualitative shape: q7 ≪ q8 < q6 ≈ q4-q5 in tuples.
func TestRunTable4Smoke(t *testing.T) {
	res, err := faure.RunTable4(faure.Table4Config{Prefixes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	byQ := map[string]faure.Table4Row{}
	for _, r := range res.Rows {
		byQ[r.Query] = r
		if r.Tuples == 0 {
			t.Errorf("query %s produced no tuples", r.Query)
		}
	}
	if !(byQ["q7"].Tuples < byQ["q8"].Tuples && byQ["q8"].Tuples < byQ["q6"].Tuples) {
		t.Errorf("tuple shape should be q7 < q8 < q6: %v", byQ)
	}
	if byQ["q6"].Tuples > byQ["q4-q5"].Tuples {
		t.Errorf("q6 cannot produce more tuples than reach: %v", byQ)
	}
	out := faure.FormatTable4([]*faure.Table4Result{res})
	for _, frag := range []string{"#prefix", "q4-q5", "q6", "q7", "q8", "100"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted table missing %q:\n%s", frag, out)
		}
	}
}

// TestTable4Deterministic: same seed, same tuple counts.
func TestTable4Deterministic(t *testing.T) {
	a, err := faure.RunTable4(faure.Table4Config{Prefixes: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := faure.RunTable4(faure.Table4Config{Prefixes: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].Tuples != b.Rows[i].Tuples {
			t.Errorf("row %s: %d vs %d tuples", a.Rows[i].Query, a.Rows[i].Tuples, b.Rows[i].Tuples)
		}
	}
}

// TestTable4AblationsAgree: every ablation option set produces the
// same satisfiable tuple counts for q7 (the smallest, fully checkable
// output).
func TestTable4AblationsAgree(t *testing.T) {
	var base int
	for i, opts := range []faure.Options{
		{},
		{NoAbsorb: true},
		{NoIndex: true},
		{NoSolverCache: true},
	} {
		res, err := faure.RunTable4(faure.Table4Config{Prefixes: 40, Seed: 3, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		q7 := res.Rows[2].Tuples
		if i == 0 {
			base = q7
			continue
		}
		if q7 != base {
			t.Errorf("option set %d: q7 tuples %d != baseline %d", i, q7, base)
		}
	}
}

// TestEnterpriseEndToEnd drives the §5 scenario through the public
// API, mirroring cmd/faure-verify.
func TestEnterpriseEndToEnd(t *testing.T) {
	v := &faure.Verifier{Doms: faure.EnterpriseDomains(), Schema: faure.EnterpriseSchema()}
	known := []faure.Constraint{faure.Clb(), faure.Cs()}
	u := faure.ListingFourUpdate()
	db := faure.EnterpriseState(false)

	rep, level, err := v.Ladder(faure.T1(), known, &u, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != faure.Holds || level != "category-i" {
		t.Errorf("T1: %v at %s", rep.Verdict, level)
	}
	rep, level, err = v.Ladder(faure.T2(), known, &u, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != faure.Holds || level != "category-ii" {
		t.Errorf("T2: %v at %s", rep.Verdict, level)
	}
}

// TestSubsumesFacade checks the package-level Subsumes helper.
func TestSubsumesFacade(t *testing.T) {
	ok, err := faure.Subsumes(faure.T1(), []faure.Constraint{faure.Cs()}, faure.EnterpriseDomains(), faure.EnterpriseSchema())
	if err != nil || !ok {
		t.Errorf("T1 should be subsumed by C_s alone (%v, %v)", ok, err)
	}
}

// TestApplyAndRewriteFacade round-trips an update through both paths.
func TestApplyAndRewriteFacade(t *testing.T) {
	db := faure.EnterpriseState(false)
	u := faure.ListingFourUpdate()
	post, err := faure.ApplyUpdate(db, u)
	if err != nil {
		t.Fatal(err)
	}
	if post.Table("lb").Len() != db.Table("lb").Len() {
		t.Logf("lb: %d -> %d rows", db.Table("lb").Len(), post.Table("lb").Len())
	}
	rew, err := faure.RewriteConstraint(faure.T2().Program, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rew.Rules) <= len(faure.T2().Program.Rules) {
		t.Errorf("rewrite should add chain rules")
	}
}

// TestGenerateRIBFacade checks the workload generator via the façade.
func TestGenerateRIBFacade(t *testing.T) {
	r := faure.GenerateRIB(faure.RIBConfig{Prefixes: 10, Seed: 2})
	if len(r.Entries) != 10 {
		t.Errorf("entries = %d", len(r.Entries))
	}
	db := r.ForwardingDatabase()
	if db.Table("fwd") == nil || db.Table("fwd").Len() == 0 {
		t.Errorf("forwarding database empty")
	}
}
