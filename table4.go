package faure

import (
	"fmt"
	"strings"
	"time"

	"faure/internal/faurelog"
	"faure/internal/network"
	"faure/internal/rib"
)

// Table4Config parameterises one run of the paper's Table 4
// experiment: all-pairs reachability (q4–q5) and the three failure
// patterns (q6–q8) over a synthetic RIB-derived forwarding state.
type Table4Config struct {
	// Prefixes is the workload size (the paper sweeps 1000 → 922067).
	Prefixes int
	// Seed fixes the synthetic RIB.
	Seed int64
	// PoolSize is the link-state variable pool (≥ 3); see package rib.
	PoolSize int
	// Q7Src/Q7Dst pin q7's node pair (the paper uses 2 and 5).
	Q7Src, Q7Dst int
	// Q8Src pins q8's source (the paper uses 1).
	Q8Src int
	// Options are passed to every evaluation (ablation knobs).
	Options Options
}

func (c Table4Config) withDefaults() Table4Config {
	if c.Prefixes == 0 {
		c.Prefixes = 1000
	}
	if c.PoolSize == 0 {
		c.PoolSize = 10
	}
	if c.Q7Src == 0 {
		c.Q7Src = 2
	}
	if c.Q7Dst == 0 {
		c.Q7Dst = 5
	}
	if c.Q8Src == 0 {
		c.Q8Src = 1
	}
	return c
}

// Table4Row is one query's measurements. SQL, Solver and Tuples match
// the paper's columns (relational time, condition-solving time, tuples
// produced); the remaining fields carry the evaluation's full Stats so
// the bench harness can emit machine-readable reports.
type Table4Row struct {
	Query      string
	SQL        time.Duration
	Solver     time.Duration
	Wall       time.Duration // SQL + Solver
	Tuples     int
	Iterations int
	Derived    int
	Pruned     int
	Absorbed   int
	SatCalls   int
}

// rowFromStats builds a Table4Row from one evaluation's statistics.
func rowFromStats(query string, s faurelog.Stats, tuples int) Table4Row {
	return Table4Row{
		Query:      query,
		SQL:        s.SQLTime,
		Solver:     s.SolverTime,
		Wall:       s.SQLTime + s.SolverTime,
		Tuples:     tuples,
		Iterations: s.Iterations,
		Derived:    s.Derived,
		Pruned:     s.Pruned,
		Absorbed:   s.Absorbed,
		SatCalls:   s.SatCalls,
	}
}

// Table4Result is a full row group of Table 4 for one prefix count.
type Table4Result struct {
	Prefixes int
	Rows     []Table4Row // q4-q5, q6, q7, q8 in order
}

// RunTable4 regenerates one row group of the paper's Table 4: it
// builds the synthetic forwarding state, computes all-pairs
// reachability with the recursive q4–q5, then runs the failure
// patterns q6 (2-link failure), q7 (pinned pair, nested over q6) and
// q8 (at least one failure) over it, reporting per-phase times and
// tuple counts.
func RunTable4(cfg Table4Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	r := rib.Generate(rib.Config{Prefixes: cfg.Prefixes, PoolSize: cfg.PoolSize, Seed: cfg.Seed})
	db := r.ForwardingDatabase()

	out := &Table4Result{Prefixes: cfg.Prefixes}

	// q4–q5: all-pairs reachability.
	reachRes, err := faurelog.Eval(network.ReachabilityProgram(), db, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("q4-q5: %w", err)
	}
	reach := reachRes.DB.Table("reach")
	out.Rows = append(out.Rows, rowFromStats("q4-q5", reachRes.Stats, reach.Len()))

	// q6: reachability under the 2-link-failure pattern.
	res6, err := faurelog.Eval(network.TwoLinkFailureProgram("x", "y", "z"), reachRes.DB, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("q6: %w", err)
	}
	out.Rows = append(out.Rows, rowFromStats("q6", res6.Stats, res6.DB.Table("t1").Len()))

	// q7: nested query over q6's output, pinned to one node pair.
	res7, err := faurelog.Eval(network.PinnedPairFailureProgram(cfg.Q7Src, cfg.Q7Dst, "y"), res6.DB, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("q7: %w", err)
	}
	out.Rows = append(out.Rows, rowFromStats("q7", res7.Stats, res7.DB.Table("t2").Len()))

	// q8: at-least-one-failure from a pinned source.
	res8, err := faurelog.Eval(network.AtLeastOneFailureProgram(cfg.Q8Src, "y", "z"), reachRes.DB, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("q8: %w", err)
	}
	out.Rows = append(out.Rows, rowFromStats("q8", res8.Stats, res8.DB.Table("t3").Len()))
	return out, nil
}

// Format renders row groups in the paper's Table 4 layout.
func FormatTable4(results []*Table4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s", "#prefix")
	for _, q := range []string{"q4-q5", "q6", "q7", "q8"} {
		fmt.Fprintf(&b, " | %-28s", q+" (sql / solver / #tuples)")
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 9+4*31))
	b.WriteByte('\n')
	for _, res := range results {
		fmt.Fprintf(&b, "%-9d", res.Prefixes)
		for _, row := range res.Rows {
			fmt.Fprintf(&b, " | %9s %9s %8d", fmtDur(row.SQL), fmtDur(row.Solver), row.Tuples)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
