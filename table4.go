package faure

import (
	"fmt"
	"strings"
	"time"

	"faure/internal/budget"
	"faure/internal/ctable"
	"faure/internal/faurelog"
	"faure/internal/guard"
	"faure/internal/network"
	"faure/internal/rib"
)

// Table4Config parameterises one run of the paper's Table 4
// experiment: all-pairs reachability (q4–q5) and the three failure
// patterns (q6–q8) over a synthetic RIB-derived forwarding state.
type Table4Config struct {
	// Prefixes is the workload size (the paper sweeps 1000 → 922067).
	Prefixes int
	// Seed fixes the synthetic RIB.
	Seed int64
	// PoolSize is the link-state variable pool (≥ 3); see package rib.
	PoolSize int
	// Q7Src/Q7Dst pin q7's node pair (the paper uses 2 and 5).
	Q7Src, Q7Dst int
	// Q8Src pins q8's source (the paper uses 1).
	Q8Src int
	// Options are passed to every evaluation (ablation knobs).
	Options Options
}

func (c Table4Config) withDefaults() Table4Config {
	if c.Prefixes == 0 {
		c.Prefixes = 1000
	}
	if c.PoolSize == 0 {
		c.PoolSize = 10
	}
	if c.Q7Src == 0 {
		c.Q7Src = 2
	}
	if c.Q7Dst == 0 {
		c.Q7Dst = 5
	}
	if c.Q8Src == 0 {
		c.Q8Src = 1
	}
	return c
}

// Table4Row is one query's measurements. SQL, Solver and Tuples match
// the paper's columns (relational time, condition-solving time, tuples
// produced); the remaining fields carry the evaluation's full Stats so
// the bench harness can emit machine-readable reports.
type Table4Row struct {
	Query      string
	SQL        time.Duration
	Solver     time.Duration
	Wall       time.Duration // SQL + Solver
	Tuples     int
	Iterations int
	Derived    int
	Pruned     int
	Absorbed   int
	// AbsorbProbes counts the absorption checks that needed a semantic
	// solver probe (the syntactic conjunct fast path answers the rest).
	AbsorbProbes int
	SatCalls     int
	// Incremental-solver counters: decisions answered by an exact-key
	// cached certificate, by a related certificate (base-witness replay
	// or DAG propagation), by the compiled finite-domain fast path, the
	// decisions that reached actual search, and certificate-store
	// evictions. SatCallsPerDerived = SolverSearches / Derived is the
	// headline metric — well below 1 means certificates, not search,
	// carried the run.
	SolverCacheHits    int
	SolverCertHits     int
	SolverFastPathHits int
	SolverSearches     int
	MemoEvictions      int64
	SatCallsPerDerived float64
	// Intern counters snapshot the condition intern table: hit/miss
	// deltas attributed to this query's evaluation plus the table's
	// live-node count when it finished (process-wide, monotonic).
	InternHits   int64
	InternMisses int64
	InternLive   int64
	// Store access counters: indexed probes (single- and multi-column),
	// deliberate full scans, degraded probes that fell back to a scan,
	// and multi-column bucket intersections performed by the planner.
	StoreProbes      int64
	StoreMultiProbes int64
	StoreScans       int64
	StoreFallbacks   int64
	Intersections    int64
	// ProbeHitRatio is the fraction of store accesses answered by an
	// index probe rather than a scan (1 when the store saw no traffic).
	ProbeHitRatio float64
	// PlansPlanned/PlansReordered count rule bodies the cost-guided
	// planner considered and how many it actually reordered.
	PlansPlanned   int64
	PlansReordered int64
	// Provenance counters (zero unless the run wired a ProvRecorder):
	// edges and parent references recorded, and edges a bounded
	// recorder's ring overwrote.
	ProvEdges   int64
	ProvParents int64
	ProvEvicted int64
}

// rowFromStats builds a Table4Row from one evaluation's statistics.
func rowFromStats(query string, s faurelog.Stats, tuples int) Table4Row {
	return Table4Row{
		Query:        query,
		SQL:          s.SQLTime,
		Solver:       s.SolverTime,
		Wall:         s.SQLTime + s.SolverTime,
		Tuples:       tuples,
		Iterations:   s.Iterations,
		Derived:      s.Derived,
		Pruned:       s.Pruned,
		Absorbed:     s.Absorbed,
		AbsorbProbes: s.AbsorbProbes,
		SatCalls:     s.SatCalls,

		SolverCacheHits:    s.SolverCacheHits,
		SolverCertHits:     s.SolverCertHits,
		SolverFastPathHits: s.SolverFastPathHits,
		SolverSearches:     s.SolverSearches,
		MemoEvictions:      s.MemoEvictions,
		SatCallsPerDerived: s.SatCallsPerDerived(),

		InternHits:   s.InternHits,
		InternMisses: s.InternMisses,
		InternLive:   s.InternLive,

		StoreProbes:      s.Probes,
		StoreMultiProbes: s.MultiProbes,
		StoreScans:       s.Scans,
		StoreFallbacks:   s.FallbackScans,
		Intersections:    s.Intersections,
		ProbeHitRatio:    s.ProbeHitRatio(),
		PlansPlanned:     s.PlansPlanned,
		PlansReordered:   s.PlansReordered,

		ProvEdges:   s.ProvEdges,
		ProvParents: s.ProvParents,
		ProvEvicted: s.ProvEvicted,
	}
}

// Table4Result is a full row group of Table 4 for one prefix count.
type Table4Result struct {
	Prefixes int
	Rows     []Table4Row // q4-q5, q6, q7, q8 in order
	// Truncated is set when a budget (cfg.Options.Budget) tripped
	// mid-sweep: Rows holds the queries that completed plus the partial
	// row of the query that was cut short, and the run is not an error.
	Truncated *budget.Exceeded
}

// RunTable4 regenerates one row group of the paper's Table 4: it
// builds the synthetic forwarding state, computes all-pairs
// reachability with the recursive q4–q5, then runs the failure
// patterns q6 (2-link failure), q7 (pinned pair, nested over q6) and
// q8 (at least one failure) over it, reporting per-phase times and
// tuple counts.
func RunTable4(cfg Table4Config) (result *Table4Result, err error) {
	defer guard.Recover("faure.RunTable4", &err)
	cfg = cfg.withDefaults()
	r := rib.Generate(rib.Config{Prefixes: cfg.Prefixes, PoolSize: cfg.PoolSize, Seed: cfg.Seed,
		Budget: cfg.Options.Budget})
	out := &Table4Result{Prefixes: cfg.Prefixes}
	if r.Truncated != nil {
		out.Truncated = r.Truncated
		return out, nil
	}
	db := r.ForwardingDatabase()
	if r.Truncated != nil {
		out.Truncated = r.Truncated
		return out, nil
	}

	// runQuery evaluates one query of the sweep; a budget trip records
	// the partial row and stops the sweep without erroring.
	runQuery := func(name string, prog *faurelog.Program, in *ctable.Database, table string) (*faurelog.Result, bool, error) {
		res, err := faurelog.Eval(prog, in, cfg.Options)
		if err != nil {
			return nil, false, fmt.Errorf("%s: %w", name, err)
		}
		tuples := 0
		if t := res.DB.Table(table); t != nil {
			tuples = t.Len()
		}
		out.Rows = append(out.Rows, rowFromStats(name, res.Stats, tuples))
		if res.Truncated != nil {
			out.Truncated = res.Truncated
			return res, false, nil
		}
		return res, true, nil
	}

	// q4–q5: all-pairs reachability.
	reachRes, ok, err := runQuery("q4-q5", network.ReachabilityProgram(), db, "reach")
	if err != nil {
		return nil, err
	}
	if !ok {
		return out, nil
	}

	// q6: reachability under the 2-link-failure pattern.
	res6, ok, err := runQuery("q6", network.TwoLinkFailureProgram("x", "y", "z"), reachRes.DB, "t1")
	if err != nil {
		return nil, err
	}
	if !ok {
		return out, nil
	}

	// q7: nested query over q6's output, pinned to one node pair.
	if _, ok, err = runQuery("q7", network.PinnedPairFailureProgram(cfg.Q7Src, cfg.Q7Dst, "y"), res6.DB, "t2"); err != nil {
		return nil, err
	} else if !ok {
		return out, nil
	}

	// q8: at-least-one-failure from a pinned source.
	if _, _, err = runQuery("q8", network.AtLeastOneFailureProgram(cfg.Q8Src, "y", "z"), reachRes.DB, "t3"); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders row groups in the paper's Table 4 layout.
func FormatTable4(results []*Table4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s", "#prefix")
	for _, q := range []string{"q4-q5", "q6", "q7", "q8"} {
		fmt.Fprintf(&b, " | %-28s", q+" (sql / solver / #tuples)")
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 9+4*31))
	b.WriteByte('\n')
	for _, res := range results {
		fmt.Fprintf(&b, "%-9d", res.Prefixes)
		for _, row := range res.Rows {
			fmt.Fprintf(&b, " | %9s %9s %8d", fmtDur(row.SQL), fmtDur(row.Solver), row.Tuples)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
